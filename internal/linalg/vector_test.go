package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1, 2}.Dot(Vector{1})
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.NormL1(); !almostEqual(got, 7, 1e-12) {
		t.Errorf("NormL1 = %v, want 7", got)
	}
	neg := Vector{-3, 4}
	if got := neg.NormL1(); !almostEqual(got, 7, 1e-12) {
		t.Errorf("NormL1 with negatives = %v, want 7", got)
	}
}

func TestVectorDistance(t *testing.T) {
	v := Vector{0, 0}
	w := Vector{3, 4}
	if got := v.Distance(w); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := v.SquaredDistance(w); !almostEqual(got, 25, 1e-12) {
		t.Errorf("SquaredDistance = %v, want 25", got)
	}
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !got.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	v2 := v.Clone()
	v2.ScaleInPlace(-1)
	if !v2.Equal(Vector{-1, -2, -3}, 0) {
		t.Errorf("ScaleInPlace = %v", v2)
	}
	v3 := v.Clone()
	v3.AXPY(2, w)
	if !v3.Equal(Vector{9, 12, 15}, 0) {
		t.Errorf("AXPY = %v", v3)
	}
}

func TestVectorMoments(t *testing.T) {
	v := Vector{2, 4, 4, 4, 5, 5, 7, 9}
	if got := v.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := v.Variance(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := v.Std(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
}

func TestVectorSkewness(t *testing.T) {
	sym := Vector{-2, -1, 0, 1, 2}
	if got := sym.Skewness(); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Skewness of symmetric data = %v, want 0", got)
	}
	right := Vector{1, 1, 1, 1, 10}
	if got := right.Skewness(); got <= 0 {
		t.Errorf("Skewness of right-tailed data = %v, want > 0", got)
	}
	constant := Vector{3, 3, 3}
	if got := constant.Skewness(); got != 0 {
		t.Errorf("Skewness of constant data = %v, want 0", got)
	}
	if got := (Vector{}).Skewness(); got != 0 {
		t.Errorf("Skewness of empty vector = %v, want 0", got)
	}
}

func TestVectorMinMax(t *testing.T) {
	v := Vector{3, -1, 7, 2}
	minVal, minIdx := v.Min()
	if minVal != -1 || minIdx != 1 {
		t.Errorf("Min = (%v,%d), want (-1,1)", minVal, minIdx)
	}
	maxVal, maxIdx := v.Max()
	if maxVal != 7 || maxIdx != 2 {
		t.Errorf("Max = (%v,%d), want (7,2)", maxVal, maxIdx)
	}
}

func TestVectorEmptyStats(t *testing.T) {
	var v Vector
	if v.Mean() != 0 || v.Variance() != 0 {
		t.Error("empty vector stats should be zero")
	}
}

func TestVectorHasNaN(t *testing.T) {
	if (Vector{1, 2, 3}).HasNaN() {
		t.Error("finite vector reported NaN")
	}
	if !(Vector{1, math.NaN()}).HasNaN() {
		t.Error("NaN vector not detected")
	}
	if !(Vector{math.Inf(1)}).HasNaN() {
		t.Error("Inf vector not detected")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(Vector{1, 2}, Vector{3}, Vector{}, Vector{4, 5})
	if !got.Equal(Vector{1, 2, 3, 4, 5}, 0) {
		t.Errorf("Concat = %v", got)
	}
}

func TestVectorFillSum(t *testing.T) {
	v := NewVector(4)
	v.Fill(2.5)
	if got := v.Sum(); !almostEqual(got, 10, 1e-12) {
		t.Errorf("Sum after Fill = %v, want 10", got)
	}
}

// Property: the Cauchy-Schwarz inequality |<v,w>| <= ||v||*||w|| holds.
func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		v := Vector{clampF(a), clampF(b), clampF(c)}
		w := Vector{clampF(d), clampF(e), clampF(g)}
		lhs := math.Abs(v.Dot(w))
		rhs := v.Norm() * w.Norm()
		return lhs <= rhs+1e-6*(1+rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the triangle inequality holds for the Euclidean distance.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		u := Vector{clampF(a), clampF(b)}
		v := Vector{clampF(c), clampF(d)}
		w := Vector{clampF(e), clampF(g)}
		return u.Distance(w) <= u.Distance(v)+v.Distance(w)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampF maps arbitrary float64 inputs from testing/quick into a well-behaved
// finite range so properties are not dominated by overflow artifacts.
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
