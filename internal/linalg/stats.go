package linalg

import (
	"math"
	"slices"
	"sort"
)

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	v := Vector(xs)
	return v.Mean(), v.Std()
}

// Median returns the median of xs. It copies the input, so xs is not
// modified. The median of an empty slice is 0.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}

// Entropy returns the Shannon entropy (natural log) of a non-negative value
// distribution. The values are normalized to sum to one; zero-mass inputs
// yield zero entropy.
func Entropy(values []float64) float64 {
	var total float64
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, v := range values {
		if v <= 0 {
			continue
		}
		p := v / total
		h -= p * math.Log(p)
	}
	return h
}

// Histogram builds a histogram with the given number of bins over [lo,hi).
// Values outside the range are clamped into the first/last bin.
func Histogram(values []float64, bins int, lo, hi float64) []float64 {
	h := make([]float64, bins)
	if bins == 0 || hi <= lo {
		return h
	}
	width := (hi - lo) / float64(bins)
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h[idx]++
	}
	return h
}

// Normalize scales values so that they sum to one. A zero-sum input is
// returned unchanged.
func Normalize(values []float64) []float64 {
	var total float64
	for _, v := range values {
		total += v
	}
	out := make([]float64, len(values))
	if total == 0 {
		copy(out, values)
		return out
	}
	for i, v := range values {
		out[i] = v / total
	}
	return out
}

// ArgsortDesc returns the indices that sort xs in descending order.
// Ties are broken by ascending index so the ordering is deterministic.
// The index tiebreak makes the comparator a total order, so any correct
// sort yields the same permutation — which is why switching between sort
// implementations here is safe, and why the generic slices sort (no
// reflect-based swapping, inlinable comparator) is used over sort.Slice.
func ArgsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if xs[a] != xs[b] {
			if xs[a] > xs[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	return idx
}

// ArgsortAsc returns the indices that sort xs in ascending order. Ties are
// broken by ascending index, with the same total-order rationale as
// ArgsortDesc.
func ArgsortAsc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if xs[a] != xs[b] {
			if xs[a] < xs[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	return idx
}
