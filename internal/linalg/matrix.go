package linalg

import "fmt"

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, x float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = x
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a Vector backed by the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.Rows, m.Cols))
	}
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// Col returns column j as a newly allocated Vector.
func (m *Matrix) Col(j int) Vector {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: column %d out of range for %dx%d matrix", j, m.Rows, m.Cols))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulVec returns m*v as a new vector. v must have length m.Cols.
func (m *Matrix) MulVec(v Vector) Vector {
	return m.MulVecInto(make(Vector, m.Rows), v)
}

// MulVecInto stores m*v into dst (which must have length m.Rows) and returns
// dst. It allocates nothing, so hot ranking loops can reuse the destination.
func (m *Matrix) MulVecInto(dst, v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto destination length %d, want %d", len(dst), m.Rows))
	}
	v = v[:m.Cols]
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		// Four independent accumulators break the loop-carried add
		// dependency; the combine order is fixed, so results are
		// deterministic (though grouped differently than a plain
		// left-to-right sum).
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= len(row); j += 4 {
			s0 += row[j] * v[j]
			s1 += row[j+1] * v[j+1]
			s2 += row[j+2] * v[j+2]
			s3 += row[j+3] * v[j+3]
		}
		for ; j < len(row); j++ {
			s0 += row[j] * v[j]
		}
		dst[i] = ((s0 + s1) + s2) + s3
	}
	return dst
}

// RowSquaredNorms stores ||row_i||^2 for every row into dst (which must have
// length m.Rows) and returns dst.
func (m *Matrix) RowSquaredNorms(dst Vector) Vector {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: RowSquaredNorms destination length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for _, x := range row {
			s += x * x
		}
		dst[i] = s
	}
	return dst
}

// RowSquaredDistancesInto stores ||row_i - v||^2 for every row into dst and
// returns dst. The per-row arithmetic is identical to Vector.SquaredDistance
// (same accumulation order), so results are bit-for-bit equal to the scalar
// path; the win is the flat row-major traversal and the absence of per-row
// dispatch.
func (m *Matrix) RowSquaredDistancesInto(dst, v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: RowSquaredDistances shape mismatch %dx%d vs %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: RowSquaredDistances destination length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			d := x - v[j]
			s += d * d
		}
		dst[i] = s
	}
	return dst
}

// RowSquaredDistancesNormInto stores ||row_i - v||^2 for every row into dst
// using the expansion ||x||^2 + ||v||^2 - 2<x,v> with the precomputed row
// norms, so the whole batch is one matrix-vector product. Cancellation makes
// the result differ from the direct subtraction by O(1e-15) relative error;
// negative results from rounding are clamped to zero. Use
// RowSquaredDistancesInto where bit-exact agreement with the scalar path
// matters.
func (m *Matrix) RowSquaredDistancesNormInto(dst, v, rowNorms Vector) Vector {
	if len(rowNorms) != m.Rows {
		panic(fmt.Sprintf("linalg: RowSquaredDistancesNormInto norms length %d, want %d", len(rowNorms), m.Rows))
	}
	m.MulVecInto(dst, v)
	vv := v.Dot(v)
	for i := range dst {
		d := rowNorms[i] + vv - 2*dst[i]
		if d < 0 {
			d = 0
		}
		dst[i] = d
	}
	return dst
}

// Mul returns the matrix product m*n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			nRow := n.Data[k*n.Cols : (k+1)*n.Cols]
			oRow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, b := range nRow {
				oRow[j] += a * b
			}
		}
	}
	return out
}

// FromRows builds a matrix whose rows are the given vectors.
// All vectors must have the same length; an empty input yields a 0x0 matrix.
func FromRows(rows []Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: FromRows ragged input: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}
