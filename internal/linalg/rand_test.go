package linalg

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		x := r.Intn(5)
		if x < 0 || x >= 5 {
			t.Fatalf("Intn out of range: %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.1 {
		t.Errorf("Normal mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.5 {
		t.Errorf("Normal variance = %v, want ~9", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm is not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	count := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	a := r.Split()
	b := r.Split()
	equal := 0
	for i := 0; i < 20; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("split streams look correlated: %d/20 equal draws", equal)
	}
}
