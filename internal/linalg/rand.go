package linalg

import "math"

// RNG is a small deterministic pseudo-random number generator
// (xorshift64*). It exists so that dataset synthesis, log simulation and the
// experiment harness are reproducible across runs and platforms without
// depending on math/rand seeding behaviour, and so that it can be embedded by
// value in other structs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced by a
// fixed non-zero constant because the xorshift state must never be zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a pseudo-random value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a pseudo-random value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("linalg: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a pseudo-random value in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a pseudo-random sample from N(mean, std^2) using the
// Box-Muller transform.
func (r *RNG) Normal(mean, std float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + std*z
}

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n integers through the swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Split derives a new independent generator from r. The derived stream is a
// deterministic function of r's current state, so splitting is reproducible.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xda3e39cb94b95bdb)
}
