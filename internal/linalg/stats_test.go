package linalg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestEntropy(t *testing.T) {
	// Uniform distribution over 4 outcomes: entropy = ln 4.
	if got := Entropy([]float64{1, 1, 1, 1}); !almostEqual(got, math.Log(4), 1e-12) {
		t.Errorf("uniform entropy = %v, want ln4", got)
	}
	// Deterministic distribution: entropy = 0.
	if got := Entropy([]float64{1, 0, 0}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("deterministic entropy = %v, want 0", got)
	}
	// Zero mass: defined as 0.
	if got := Entropy([]float64{0, 0}); got != 0 {
		t.Errorf("zero-mass entropy = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.1, 0.2, 0.55, 0.9, -5, 99}, 2, 0, 1)
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", h)
	}
	empty := Histogram(nil, 3, 0, 1)
	if len(empty) != 3 || empty[0] != 0 {
		t.Errorf("empty Histogram = %v", empty)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 2, 4})
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize of zeros = %v", zero)
	}
}

func TestArgsort(t *testing.T) {
	xs := []float64{3, 1, 2}
	desc := ArgsortDesc(xs)
	if desc[0] != 0 || desc[1] != 2 || desc[2] != 1 {
		t.Errorf("ArgsortDesc = %v", desc)
	}
	asc := ArgsortAsc(xs)
	if asc[0] != 1 || asc[1] != 2 || asc[2] != 0 {
		t.Errorf("ArgsortAsc = %v", asc)
	}
}

func TestArgsortStableTies(t *testing.T) {
	xs := []float64{1, 1, 1}
	desc := ArgsortDesc(xs)
	if desc[0] != 0 || desc[1] != 1 || desc[2] != 2 {
		t.Errorf("ArgsortDesc ties not stable: %v", desc)
	}
}

// Property: ArgsortDesc yields values in non-increasing order and is a
// permutation of the indices.
func TestPropertyArgsortDesc(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = clampF(v)
		}
		idx := ArgsortDesc(xs)
		if len(idx) != len(xs) {
			return false
		}
		seen := make(map[int]bool, len(idx))
		for _, i := range idx {
			if i < 0 || i >= len(xs) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return sort.SliceIsSorted(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] }) ||
			isNonIncreasing(xs, idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func isNonIncreasing(xs []float64, idx []int) bool {
	for k := 1; k < len(idx); k++ {
		if xs[idx[k-1]] < xs[idx[k]] {
			return false
		}
	}
	return true
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(mean, 5, 1e-12) || !almostEqual(std, 2, 1e-12) {
		t.Errorf("MeanStd = (%v,%v), want (5,2)", mean, std)
	}
}
