package imaging

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewImageBlack(t *testing.T) {
	im := New(4, 3)
	if im.Width != 4 || im.Height != 3 || len(im.Pix) != 36 {
		t.Fatalf("unexpected shape %dx%d pix=%d", im.Width, im.Height, len(im.Pix))
	}
	r, g, b := im.At(2, 1)
	if r != 0 || g != 0 || b != 0 {
		t.Error("new image is not black")
	}
}

func TestNewInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-size image")
		}
	}()
	New(0, 5)
}

func TestSetAtRoundTrip(t *testing.T) {
	im := New(8, 8)
	im.Set(3, 5, 10, 20, 30)
	r, g, b := im.At(3, 5)
	if r != 10 || g != 20 || b != 30 {
		t.Errorf("At = (%d,%d,%d)", r, g, b)
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	im := New(4, 4)
	im.Set(-1, 0, 255, 255, 255) // must not panic
	im.Set(4, 4, 255, 255, 255)
	r, g, b := im.At(-1, 10)
	if r != 0 || g != 0 || b != 0 {
		t.Error("out-of-bounds read should be black")
	}
}

func TestClone(t *testing.T) {
	im := New(2, 2)
	im.Set(0, 0, 1, 2, 3)
	c := im.Clone()
	c.Set(0, 0, 9, 9, 9)
	r, _, _ := im.At(0, 0)
	if r != 1 {
		t.Error("Clone shares pixel storage")
	}
}

func TestFill(t *testing.T) {
	im := New(3, 3)
	im.Fill(7, 8, 9)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			r, g, b := im.At(x, y)
			if r != 7 || g != 8 || b != 9 {
				t.Fatalf("Fill failed at (%d,%d)", x, y)
			}
		}
	}
}

func TestGrayLuma(t *testing.T) {
	im := New(2, 1)
	im.Set(0, 0, 255, 255, 255)
	im.Set(1, 0, 0, 0, 0)
	g := im.Gray()
	if math.Abs(g[0][0]-255) > 1e-9 || g[0][1] != 0 {
		t.Errorf("Gray = %v", g)
	}
}

func TestRGBToHSVKnownValues(t *testing.T) {
	cases := []struct {
		r, g, b uint8
		h, s, v float64
	}{
		{255, 0, 0, 0, 1, 1},
		{0, 255, 0, 120, 1, 1},
		{0, 0, 255, 240, 1, 1},
		{255, 255, 255, 0, 0, 1},
		{0, 0, 0, 0, 0, 0},
		{128, 128, 128, 0, 0, 128.0 / 255},
	}
	for _, c := range cases {
		h, s, v := RGBToHSV(c.r, c.g, c.b)
		if math.Abs(h-c.h) > 0.5 || math.Abs(s-c.s) > 0.01 || math.Abs(v-c.v) > 0.01 {
			t.Errorf("RGBToHSV(%d,%d,%d) = (%v,%v,%v), want (%v,%v,%v)", c.r, c.g, c.b, h, s, v, c.h, c.s, c.v)
		}
	}
}

func TestHSVToRGBKnownValues(t *testing.T) {
	r, g, b := HSVToRGB(0, 1, 1)
	if r != 255 || g != 0 || b != 0 {
		t.Errorf("HSVToRGB(0,1,1) = (%d,%d,%d), want red", r, g, b)
	}
	r, g, b = HSVToRGB(120, 1, 1)
	if r != 0 || g != 255 || b != 0 {
		t.Errorf("HSVToRGB(120,1,1) = (%d,%d,%d), want green", r, g, b)
	}
	r, g, b = HSVToRGB(240, 1, 0.5)
	if r != 0 || g != 0 || b != 128 {
		t.Errorf("HSVToRGB(240,1,0.5) = (%d,%d,%d), want half blue", r, g, b)
	}
}

// Property: RGB -> HSV -> RGB round-trips within quantization error.
func TestPropertyHSVRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		h, s, v := RGBToHSV(r, g, b)
		r2, g2, b2 := HSVToRGB(h, s, v)
		return absInt(int(r)-int(r2)) <= 2 && absInt(int(g)-int(g2)) <= 2 && absInt(int(b)-int(b2)) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: HSV ranges are always respected.
func TestPropertyHSVRanges(t *testing.T) {
	f := func(r, g, b uint8) bool {
		h, s, v := RGBToHSV(r, g, b)
		return h >= 0 && h < 360 && s >= 0 && s <= 1 && v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHSVPlanes(t *testing.T) {
	im := New(2, 2)
	im.Fill(255, 0, 0)
	h, s, v := im.HSV()
	if h[1][1] != 0 || s[1][1] != 1 || v[1][1] != 1 {
		t.Errorf("HSV planes for red = (%v,%v,%v)", h[1][1], s[1][1], v[1][1])
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
