// Package imaging provides the minimal raster-image substrate the CBIR
// pipeline needs: an RGB image type, color-space conversions (HSV,
// grayscale), procedural drawing primitives used by the synthetic dataset
// generator, and a PPM codec for inspecting generated images on disk.
//
// The paper extracts all visual features from real pixels (HSV color
// moments, a Canny edge-direction histogram and Daubechies-4 wavelet
// entropies); this package supplies those pixels.
package imaging

import (
	"fmt"
	"math"
)

// Image is a dense 8-bit-per-channel RGB raster stored row-major.
type Image struct {
	Width, Height int
	// Pix holds the pixel data as R,G,B triples, row by row.
	Pix []uint8
}

// New returns a black image of the given size.
func New(width, height int) *Image {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("imaging: invalid image size %dx%d", width, height))
	}
	return &Image{Width: width, Height: height, Pix: make([]uint8, width*height*3)}
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	c := &Image{Width: im.Width, Height: im.Height, Pix: make([]uint8, len(im.Pix))}
	copy(c.Pix, im.Pix)
	return c
}

// In reports whether (x,y) lies inside the image bounds.
func (im *Image) In(x, y int) bool {
	return x >= 0 && x < im.Width && y >= 0 && y < im.Height
}

// At returns the RGB value at (x,y). Out-of-bounds reads return black.
func (im *Image) At(x, y int) (r, g, b uint8) {
	if !im.In(x, y) {
		return 0, 0, 0
	}
	i := (y*im.Width + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set assigns the RGB value at (x,y). Out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, r, g, b uint8) {
	if !im.In(x, y) {
		return
	}
	i := (y*im.Width + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// SetF assigns an RGB value given as floats in [0,1], clamping as needed.
func (im *Image) SetF(x, y int, r, g, b float64) {
	im.Set(x, y, clamp8(r*255), clamp8(g*255), clamp8(b*255))
}

// Fill paints the entire image with the given color.
func (im *Image) Fill(r, g, b uint8) {
	for i := 0; i < len(im.Pix); i += 3 {
		im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
	}
}

// Gray returns the luminance plane of the image as float64 values in
// [0,255], using the Rec. 601 luma weights.
func (im *Image) Gray() [][]float64 {
	out := make([][]float64, im.Height)
	buf := make([]float64, im.Width*im.Height)
	for y := 0; y < im.Height; y++ {
		out[y] = buf[y*im.Width : (y+1)*im.Width]
		for x := 0; x < im.Width; x++ {
			r, g, b := im.At(x, y)
			out[y][x] = 0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)
		}
	}
	return out
}

// HSV returns three planes (hue in [0,360), saturation and value in [0,1])
// for the image.
func (im *Image) HSV() (h, s, v [][]float64) {
	h = makePlane(im.Width, im.Height)
	s = makePlane(im.Width, im.Height)
	v = makePlane(im.Width, im.Height)
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			r, g, b := im.At(x, y)
			hh, ss, vv := RGBToHSV(r, g, b)
			h[y][x], s[y][x], v[y][x] = hh, ss, vv
		}
	}
	return h, s, v
}

func makePlane(w, hgt int) [][]float64 {
	out := make([][]float64, hgt)
	buf := make([]float64, w*hgt)
	for y := range out {
		out[y] = buf[y*w : (y+1)*w]
	}
	return out
}

// RGBToHSV converts an 8-bit RGB triple to HSV with hue in [0,360) and
// saturation/value in [0,1].
func RGBToHSV(r8, g8, b8 uint8) (h, s, v float64) {
	r := float64(r8) / 255
	g := float64(g8) / 255
	b := float64(b8) / 255
	maxc := math.Max(r, math.Max(g, b))
	minc := math.Min(r, math.Min(g, b))
	v = maxc
	delta := maxc - minc
	if maxc > 0 {
		s = delta / maxc
	}
	if delta == 0 {
		return 0, s, v
	}
	switch maxc {
	case r:
		h = 60 * math.Mod((g-b)/delta, 6)
	case g:
		h = 60 * ((b-r)/delta + 2)
	default:
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}
	return h, s, v
}

// HSVToRGB converts hue in [0,360), saturation and value in [0,1] to an
// 8-bit RGB triple.
func HSVToRGB(h, s, v float64) (r, g, b uint8) {
	h = math.Mod(h, 360)
	if h < 0 {
		h += 360
	}
	s = clamp01(s)
	v = clamp01(v)
	c := v * s
	x := c * (1 - math.Abs(math.Mod(h/60, 2)-1))
	m := v - c
	var rf, gf, bf float64
	switch {
	case h < 60:
		rf, gf, bf = c, x, 0
	case h < 120:
		rf, gf, bf = x, c, 0
	case h < 180:
		rf, gf, bf = 0, c, x
	case h < 240:
		rf, gf, bf = 0, x, c
	case h < 300:
		rf, gf, bf = x, 0, c
	default:
		rf, gf, bf = c, 0, x
	}
	return clamp8((rf + m) * 255), clamp8((gf + m) * 255), clamp8((bf + m) * 255)
}

func clamp8(x float64) uint8 {
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return uint8(x + 0.5)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
