package imaging

import (
	"math"
	"testing"

	"lrfcsvm/internal/linalg"
)

func TestDrawRect(t *testing.T) {
	im := New(8, 8)
	im.DrawRect(2, 2, 5, 5, Color{1, 0, 0})
	r, _, _ := im.At(3, 3)
	if r != 255 {
		t.Error("rect interior not painted")
	}
	r, _, _ = im.At(6, 6)
	if r != 0 {
		t.Error("rect exterior painted")
	}
}

func TestDrawRectClipped(t *testing.T) {
	im := New(4, 4)
	// Must not panic when the rect extends outside the image.
	im.DrawRect(-5, -5, 100, 100, Color{0, 1, 0})
	_, g, _ := im.At(0, 0)
	if g != 255 {
		t.Error("clipped rect did not paint inside")
	}
}

func TestDrawCircle(t *testing.T) {
	im := New(20, 20)
	im.DrawCircle(10, 10, 5, Color{0, 0, 1})
	_, _, b := im.At(10, 10)
	if b != 255 {
		t.Error("circle center not painted")
	}
	_, _, b = im.At(0, 0)
	if b != 0 {
		t.Error("far corner painted")
	}
	_, _, b = im.At(10, 16)
	if b != 0 {
		t.Error("point outside radius painted")
	}
}

func TestDrawLineEndpoints(t *testing.T) {
	im := New(10, 10)
	im.DrawLine(1, 1, 8, 6, Color{1, 1, 1})
	r, _, _ := im.At(1, 1)
	if r != 255 {
		t.Error("line start not painted")
	}
	r, _, _ = im.At(8, 6)
	if r != 255 {
		t.Error("line end not painted")
	}
}

func TestDrawGradientMonotone(t *testing.T) {
	im := New(32, 8)
	im.DrawGradient(Color{0, 0, 0}, Color{1, 1, 1}, 0)
	rLeft, _, _ := im.At(0, 4)
	rRight, _, _ := im.At(31, 4)
	if rLeft >= rRight {
		t.Errorf("gradient not increasing: left=%d right=%d", rLeft, rRight)
	}
}

func TestDrawStripesPeriodicity(t *testing.T) {
	im := New(32, 8)
	im.DrawStripes(Color{1, 1, 1}, Color{0, 0, 0}, 8, 0)
	// One full period later the color must repeat.
	r0, _, _ := im.At(1, 2)
	r8, _, _ := im.At(9, 2)
	if r0 != r8 {
		t.Errorf("stripes not periodic: %d vs %d", r0, r8)
	}
	// Half a period later the color must flip.
	r4, _, _ := im.At(5, 2)
	if r0 == r4 {
		t.Error("stripes do not alternate")
	}
}

func TestDrawChecker(t *testing.T) {
	im := New(8, 8)
	im.DrawChecker(Color{1, 1, 1}, Color{0, 0, 0}, 2)
	r00, _, _ := im.At(0, 0)
	r20, _, _ := im.At(2, 0)
	r22, _, _ := im.At(2, 2)
	if r00 == r20 {
		t.Error("adjacent cells have the same color")
	}
	if r00 != r22 {
		t.Error("diagonal cells differ")
	}
}

func TestDrawSinusoidChangesPixels(t *testing.T) {
	im := New(32, 32)
	im.Fill(128, 128, 128)
	im.DrawSinusoid(4, 0, 0.5)
	var minR, maxR uint8 = 255, 0
	for x := 0; x < 32; x++ {
		r, _, _ := im.At(x, 16)
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR-minR < 30 {
		t.Errorf("sinusoid modulation too weak: min=%d max=%d", minR, maxR)
	}
}

func TestAddNoiseBounded(t *testing.T) {
	im := New(16, 16)
	im.Fill(128, 128, 128)
	im.AddNoise(linalg.NewRNG(1), 20)
	changed := false
	for _, p := range im.Pix {
		if p != 128 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("noise changed nothing")
	}
}

func TestDrawBlobsPaintsSomething(t *testing.T) {
	im := New(32, 32)
	im.DrawBlobs(linalg.NewRNG(2), 10, 30, 10, 2, 6)
	nonBlack := 0
	for i := 0; i < len(im.Pix); i += 3 {
		if im.Pix[i] != 0 || im.Pix[i+1] != 0 || im.Pix[i+2] != 0 {
			nonBlack++
		}
	}
	if nonBlack < 20 {
		t.Errorf("blobs painted only %d pixels", nonBlack)
	}
}

func TestColorLerp(t *testing.T) {
	a := Color{0, 0, 0}
	b := Color{1, 0.5, 0}
	mid := a.Lerp(b, 0.5)
	if math.Abs(mid.R-0.5) > 1e-12 || math.Abs(mid.G-0.25) > 1e-12 || mid.B != 0 {
		t.Errorf("Lerp = %+v", mid)
	}
	if a.Lerp(b, 0) != a || a.Lerp(b, 1) != b {
		t.Error("Lerp endpoints wrong")
	}
}

func TestFromHSV(t *testing.T) {
	c := FromHSV(0, 1, 1)
	if math.Abs(c.R-1) > 0.01 || c.G > 0.01 || c.B > 0.01 {
		t.Errorf("FromHSV(0,1,1) = %+v, want red", c)
	}
}
