package imaging

import (
	"math"

	"lrfcsvm/internal/linalg"
)

// Color is a floating-point RGB triple with components in [0,1].
type Color struct{ R, G, B float64 }

// FromHSV builds a Color from hue (degrees), saturation and value.
func FromHSV(h, s, v float64) Color {
	r, g, b := HSVToRGB(h, s, v)
	return Color{float64(r) / 255, float64(g) / 255, float64(b) / 255}
}

// Lerp linearly interpolates between c and d by t in [0,1].
func (c Color) Lerp(d Color, t float64) Color {
	return Color{
		R: c.R + (d.R-c.R)*t,
		G: c.G + (d.G-c.G)*t,
		B: c.B + (d.B-c.B)*t,
	}
}

// FillColor paints the whole image with c.
func (im *Image) FillColor(c Color) {
	im.Fill(clamp8(c.R*255), clamp8(c.G*255), clamp8(c.B*255))
}

// DrawRect fills the axis-aligned rectangle [x0,x1) x [y0,y1) with c.
// Coordinates outside the image are clipped.
func (im *Image) DrawRect(x0, y0, x1, y1 int, c Color) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			im.SetF(x, y, c.R, c.G, c.B)
		}
	}
}

// DrawCircle fills a disc centered at (cx,cy) with the given radius.
func (im *Image) DrawCircle(cx, cy, radius float64, c Color) {
	x0 := int(math.Floor(cx - radius))
	x1 := int(math.Ceil(cx + radius))
	y0 := int(math.Floor(cy - radius))
	y1 := int(math.Ceil(cy + radius))
	r2 := radius * radius
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			if dx*dx+dy*dy <= r2 {
				im.SetF(x, y, c.R, c.G, c.B)
			}
		}
	}
}

// DrawLine draws a 1-pixel-wide line from (x0,y0) to (x1,y1) using the
// Bresenham algorithm.
func (im *Image) DrawLine(x0, y0, x1, y1 int, c Color) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		im.SetF(x0, y0, c.R, c.G, c.B)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// DrawGradient paints a linear gradient between two colors along the given
// angle (radians, 0 = left-to-right).
func (im *Image) DrawGradient(from, to Color, angle float64) {
	ca, sa := math.Cos(angle), math.Sin(angle)
	// Project each pixel onto the gradient direction and normalize to [0,1].
	minP, maxP := math.Inf(1), math.Inf(-1)
	corners := [][2]float64{{0, 0}, {float64(im.Width - 1), 0}, {0, float64(im.Height - 1)}, {float64(im.Width - 1), float64(im.Height - 1)}}
	for _, c := range corners {
		p := c[0]*ca + c[1]*sa
		minP = math.Min(minP, p)
		maxP = math.Max(maxP, p)
	}
	span := maxP - minP
	if span <= 0 {
		span = 1
	}
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			t := (float64(x)*ca + float64(y)*sa - minP) / span
			c := from.Lerp(to, t)
			im.SetF(x, y, c.R, c.G, c.B)
		}
	}
}

// DrawStripes paints parallel stripes of two alternating colors.
// period is the stripe period in pixels, angle is the stripe normal
// direction in radians.
func (im *Image) DrawStripes(a, b Color, period, angle float64) {
	if period <= 0 {
		period = 1
	}
	ca, sa := math.Cos(angle), math.Sin(angle)
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			p := float64(x)*ca + float64(y)*sa
			phase := math.Mod(p, period)
			if phase < 0 {
				phase += period
			}
			c := a
			if phase >= period/2 {
				c = b
			}
			im.SetF(x, y, c.R, c.G, c.B)
		}
	}
}

// DrawChecker paints a checkerboard pattern with the given cell size.
func (im *Image) DrawChecker(a, b Color, cell int) {
	if cell < 1 {
		cell = 1
	}
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			c := a
			if ((x/cell)+(y/cell))%2 == 1 {
				c = b
			}
			im.SetF(x, y, c.R, c.G, c.B)
		}
	}
}

// DrawSinusoid overlays a sinusoidal brightness texture with the given
// spatial frequency (cycles per image width) and orientation (radians).
// amplitude is in [0,1] and modulates the existing pixels.
func (im *Image) DrawSinusoid(frequency, angle, amplitude float64) {
	ca, sa := math.Cos(angle), math.Sin(angle)
	w := float64(im.Width)
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			p := float64(x)*ca + float64(y)*sa
			mod := 1 + amplitude*math.Sin(2*math.Pi*frequency*p/w)
			r, g, b := im.At(x, y)
			im.Set(x, y, clamp8(float64(r)*mod), clamp8(float64(g)*mod), clamp8(float64(b)*mod))
		}
	}
}

// AddNoise perturbs every channel of every pixel with Gaussian noise of the
// given standard deviation (in 0..255 units).
func (im *Image) AddNoise(rng *linalg.RNG, std float64) {
	for i := range im.Pix {
		v := float64(im.Pix[i]) + rng.Normal(0, std)
		im.Pix[i] = clamp8(v)
	}
}

// DrawBlobs scatters n soft-edged discs with colors drawn around base hue
// hue±hueJitter. It is used to synthesize "natural" category imagery such as
// flowers or animals against a background.
func (im *Image) DrawBlobs(rng *linalg.RNG, n int, hue, hueJitter, minR, maxR float64) {
	for i := 0; i < n; i++ {
		cx := rng.Range(0, float64(im.Width))
		cy := rng.Range(0, float64(im.Height))
		radius := rng.Range(minR, maxR)
		h := hue + rng.Range(-hueJitter, hueJitter)
		c := FromHSV(h, rng.Range(0.5, 1), rng.Range(0.4, 1))
		im.DrawCircle(cx, cy, radius, c)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
