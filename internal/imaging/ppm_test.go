package imaging

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"lrfcsvm/internal/linalg"
)

func TestPPMRoundTrip(t *testing.T) {
	im := New(13, 7)
	im.DrawGradient(Color{0, 0, 0}, Color{1, 0.5, 0.25}, 0.3)
	im.AddNoise(linalg.NewRNG(3), 10)

	var buf bytes.Buffer
	if err := EncodePPM(&buf, im); err != nil {
		t.Fatalf("EncodePPM: %v", err)
	}
	got, err := DecodePPM(&buf)
	if err != nil {
		t.Fatalf("DecodePPM: %v", err)
	}
	if got.Width != im.Width || got.Height != im.Height {
		t.Fatalf("round-trip shape %dx%d", got.Width, got.Height)
	}
	if !bytes.Equal(got.Pix, im.Pix) {
		t.Error("round-trip pixel data differs")
	}
}

func TestPPMHeader(t *testing.T) {
	im := New(3, 2)
	var buf bytes.Buffer
	if err := EncodePPM(&buf, im); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n3 2\n255\n") {
		t.Errorf("unexpected header: %q", buf.String()[:14])
	}
}

func TestDecodePPMErrors(t *testing.T) {
	cases := map[string]string{
		"wrong magic": "P3\n2 2\n255\n",
		"bad size":    "P6\n0 2\n255\n",
		"bad maxval":  "P6\n2 2\n65535\n",
		"truncated":   "P6\n2 2\n255\nab",
	}
	for name, in := range cases {
		if _, err := DecodePPM(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveLoadPPM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.ppm")
	im := New(5, 5)
	im.DrawChecker(Color{1, 0, 0}, Color{0, 0, 1}, 2)
	if err := SavePPM(path, im); err != nil {
		t.Fatalf("SavePPM: %v", err)
	}
	got, err := LoadPPM(path)
	if err != nil {
		t.Fatalf("LoadPPM: %v", err)
	}
	if !bytes.Equal(got.Pix, im.Pix) {
		t.Error("file round-trip pixel data differs")
	}
}

func TestLoadPPMMissingFile(t *testing.T) {
	if _, err := LoadPPM(filepath.Join(t.TempDir(), "missing.ppm")); err == nil {
		t.Error("expected error for missing file")
	}
}
