package imaging

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// EncodePPM writes the image to w in binary PPM (P6) format.
func EncodePPM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.Width, im.Height); err != nil {
		return fmt.Errorf("imaging: write ppm header: %w", err)
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return fmt.Errorf("imaging: write ppm pixels: %w", err)
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) image from r.
func DecodePPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imaging: read ppm magic: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("imaging: unsupported ppm magic %q", magic)
	}
	var width, height, maxval int
	if _, err := fmt.Fscan(br, &width, &height, &maxval); err != nil {
		return nil, fmt.Errorf("imaging: read ppm header: %w", err)
	}
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("imaging: invalid ppm size %dx%d", width, height)
	}
	if maxval != 255 {
		return nil, fmt.Errorf("imaging: unsupported ppm maxval %d", maxval)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("imaging: read ppm separator: %w", err)
	}
	im := New(width, height)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imaging: read ppm pixels: %w", err)
	}
	return im, nil
}

// SavePPM writes the image to the named file in PPM format.
func SavePPM(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imaging: create %s: %w", path, err)
	}
	defer f.Close()
	if err := EncodePPM(f, im); err != nil {
		return err
	}
	return f.Close()
}

// LoadPPM reads a PPM image from the named file.
func LoadPPM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imaging: open %s: %w", path, err)
	}
	defer f.Close()
	return DecodePPM(f)
}
