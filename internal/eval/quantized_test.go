package eval

import (
	"math"
	"testing"

	"lrfcsvm/internal/core"
)

// rankedPrecisionAt computes precision@k directly from a ranked index list,
// so the exact and quantized lanes are scored by the same rule.
func rankedPrecisionAt(ranked []core.Ranked, relevant []bool, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k <= 0 {
		return 0
	}
	hits := 0
	for _, r := range ranked[:k] {
		if relevant[r.Index] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// TestQuantizedLaneRecallAndMAP is the accuracy gate of the int8 scan lane on
// the golden evaluation profile: at the default oversample the quantized
// top-20 must recover >= 99% of the exact Euclidean top-20 averaged over the
// query workload, and the Euclidean precision curve computed from the
// quantized ranking must stay within 0.005 MAP of the exact one. The measured
// values are logged and recorded in EXPERIMENTS.md.
func TestQuantizedLaneRecallAndMAP(t *testing.T) {
	exp, err := Prepare(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := exp.SampleQueries()
	cutoffs := exp.Config.Cutoffs
	maxK := cutoffs[len(cutoffs)-1]

	var recallSum float64
	exactSums := make([]float64, len(cutoffs))
	quantSums := make([]float64, len(cutoffs))
	for _, q := range queries {
		ctx := exp.QueryContext(q)
		exact, err := core.Euclidean{}.RankTopAppend(ctx, maxK, nil)
		if err != nil {
			t.Fatal(err)
		}
		quant, err := core.Euclidean{}.RankTopQuantized(ctx, maxK, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		oracle := make([]int, len(exact))
		for i, r := range exact {
			oracle[i] = r.Index
		}
		approx := make([]int, len(quant))
		for i, r := range quant {
			approx[i] = r.Index
		}
		recallSum += RecallAtK(oracle, approx, 20)
		relevant := exp.Relevant(q)
		for ci, k := range cutoffs {
			exactSums[ci] += rankedPrecisionAt(exact, relevant, k)
			quantSums[ci] += rankedPrecisionAt(quant, relevant, k)
		}
	}
	n := float64(len(queries))
	recall := recallSum / n
	exactCurve := make([]float64, len(cutoffs))
	quantCurve := make([]float64, len(cutoffs))
	for i := range cutoffs {
		exactCurve[i] = exactSums[i] / n
		quantCurve[i] = quantSums[i] / n
	}
	exactMAP := MeanAveragePrecision(exactCurve)
	quantMAP := MeanAveragePrecision(quantCurve)
	delta := math.Abs(exactMAP - quantMAP)
	t.Logf("quantized lane: recall@20 = %.6f, exact MAP = %.6f, quantized MAP = %.6f, |delta| = %.2g",
		recall, exactMAP, quantMAP, delta)
	if recall < 0.99 {
		t.Fatalf("quantized recall@20 = %.4f, want >= 0.99", recall)
	}
	if delta > 0.005 {
		t.Fatalf("quantized MAP delta = %g, want <= 0.005", delta)
	}
}
