package eval

import (
	"fmt"
	"math"
	"testing"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/kernel"
	"lrfcsvm/internal/svm"
)

// TestShrinkingParityCI20 is the fixture-level shrinking-parity acceptance
// test: on the exact training problems the LRF-CSVM feedback path produces
// over the CI 20-Category profile — the per-modality labeled problems and
// the coupled labeled+unlabeled problems across the rho annealing schedule
// — the shrinking solver must reach the same support set and decision
// values (within solver tolerance) as the unshrunk solver. Together with
// TestGoldenMAPRegression (which pins the default, shrinking-off
// configuration bit-exactly) this bounds what the shrinking fast lane may
// change.
func TestShrinkingParityCI20(t *testing.T) {
	exp, err := Prepare(CI20(7))
	if err != nil {
		t.Fatal(err)
	}
	queries := exp.SampleQueries()
	if len(queries) > 3 {
		queries = queries[:3]
	}
	scheme := core.LRFCSVM{Params: exp.Config.CSVM}
	for _, q := range queries {
		ctx := exp.QueryContext(q)
		modalities, labels, initial, err := scheme.TrainingProblem(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, mod := range modalities {
			cfg := svm.Config{Kernel: mod.Kernel}
			// The initial per-modality SVM of Fig. 1 step 1: labeled only.
			checkShrinkParity(t, fmt.Sprintf("query %d %s labeled", q, mod.Name),
				svm.NewProblem(mod.Labeled, labels, mod.C), cfg)

			// The coupled problems of Fig. 1 step 2, at the extremes and
			// middle of the rho schedule: labeled points keep cost C,
			// unlabeled points are weighted rho*C and carry Y'.
			points := append(append([]kernel.Point(nil), mod.Labeled...), mod.Unlabeled...)
			ys := append(append([]float64(nil), labels...), initial...)
			for _, rho := range []float64{1e-4, 0.1, 1} {
				costs := make([]float64, len(points))
				for i := range costs {
					if i < len(mod.Labeled) {
						costs[i] = mod.C
					} else {
						costs[i] = rho * mod.C
					}
				}
				checkShrinkParity(t, fmt.Sprintf("query %d %s coupled rho=%g", q, mod.Name, rho),
					svm.Problem{Points: points, Labels: ys, C: costs}, cfg)
			}
		}
	}
}

func checkShrinkParity(t *testing.T, name string, p svm.Problem, cfg svm.Config) {
	t.Helper()
	plain, err := svm.Train(p, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	cfgS := cfg
	cfgS.Shrinking = true
	shrunk, err := svm.Train(p, cfgS)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !plain.Converged || !shrunk.Converged {
		t.Errorf("%s: convergence plain=%v shrunk=%v", name, plain.Converged, shrunk.Converged)
		return
	}
	for i := range p.Points {
		if (plain.Alphas[i] > 0) != (shrunk.Alphas[i] > 0) {
			t.Errorf("%s: support sets differ at %d (plain %v, shrunk %v)",
				name, i, plain.Alphas[i], shrunk.Alphas[i])
		}
	}
	maxDiff := 0.0
	for _, pt := range p.Points {
		if d := math.Abs(plain.Decision(pt) - shrunk.Decision(pt)); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-2 {
		t.Errorf("%s: decision values differ by %v", name, maxDiff)
	}
}
