// Package eval implements the paper's evaluation harness: average precision
// at top-N cutoffs, mean average precision over cutoffs, the automatic
// relevance judge, and the experiment runner that regenerates Tables 1-2 and
// Figures 3-4 for the two datasets.
package eval

import (
	"fmt"
	"sort"

	"lrfcsvm/internal/core"
)

// Cutoffs are the top-N cutoffs of the paper's tables and figures: 20..100
// returned images in steps of 10.
var Cutoffs = []int{20, 30, 40, 50, 60, 70, 80, 90, 100}

// PrecisionAt computes the paper's Average Precision metric for one query at
// one cutoff: the number of relevant images among the top-k ranked images
// divided by k. relevant[i] reports whether image i shares the query's
// semantic category.
func PrecisionAt(scores []float64, relevant []bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	top := core.TopK(scores, k)
	if len(top) == 0 {
		return 0
	}
	count := 0
	for _, idx := range top {
		if relevant[idx] {
			count++
		}
	}
	return float64(count) / float64(len(top))
}

// PrecisionCurve evaluates precision at every configured cutoff.
func PrecisionCurve(scores []float64, relevant []bool, cutoffs []int) []float64 {
	out := make([]float64, len(cutoffs))
	for i, k := range cutoffs {
		out[i] = PrecisionAt(scores, relevant, k)
	}
	return out
}

// MeanAveragePrecision is the paper's MAP row: the mean of the precision
// values across the cutoffs of the table.
func MeanAveragePrecision(curve []float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	var sum float64
	for _, p := range curve {
		sum += p
	}
	return sum / float64(len(curve))
}

// Row is one scheme's row of a results table: precision per cutoff plus MAP.
type Row struct {
	Scheme    string
	Precision []float64 // aligned with the Cutoffs of the Table
	MAP       float64
}

// Improvement returns the relative improvement of this row over a baseline
// row at cutoff index i, e.g. 0.229 for "+22.9%".
func (r Row) Improvement(baseline Row, i int) float64 {
	if i < 0 || i >= len(r.Precision) || i >= len(baseline.Precision) || baseline.Precision[i] == 0 {
		return 0
	}
	return r.Precision[i]/baseline.Precision[i] - 1
}

// MAPImprovement returns the relative MAP improvement over a baseline row.
func (r Row) MAPImprovement(baseline Row) float64 {
	if baseline.MAP == 0 {
		return 0
	}
	return r.MAP/baseline.MAP - 1
}

// Table is a full results table in the format of the paper's Table 1/2:
// one row per scheme over a common list of cutoffs.
type Table struct {
	Name    string
	Dataset string
	Queries int
	Cutoffs []int
	Rows    []Row
}

// Row returns the row of the named scheme and whether it exists.
func (t *Table) Row(scheme string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Scheme == scheme {
			return r, true
		}
	}
	return Row{}, false
}

// Format renders the table as text in the layout of the paper's tables:
// one line per cutoff, one column per scheme, with relative improvements
// over the baseline scheme (the second column, RF-SVM in the paper) attached
// to the later columns.
func (t *Table) Format() string {
	var b []byte
	appendf := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	appendf("%s — %s (%d queries)\n", t.Name, t.Dataset, t.Queries)
	appendf("%-6s", "#TOP")
	for _, r := range t.Rows {
		appendf("  %-22s", r.Scheme)
	}
	appendf("\n")
	baselineIdx := 1
	if len(t.Rows) < 2 {
		baselineIdx = 0
	}
	for ci, k := range t.Cutoffs {
		appendf("%-6d", k)
		for ri, r := range t.Rows {
			if ri <= baselineIdx {
				appendf("  %-22s", fmt.Sprintf("%.3f", r.Precision[ci]))
			} else {
				appendf("  %-22s", fmt.Sprintf("%.3f (%+.1f%%)", r.Precision[ci], 100*r.Improvement(t.Rows[baselineIdx], ci)))
			}
		}
		appendf("\n")
	}
	appendf("%-6s", "MAP")
	for ri, r := range t.Rows {
		if ri <= baselineIdx {
			appendf("  %-22s", fmt.Sprintf("%.3f", r.MAP))
		} else {
			appendf("  %-22s", fmt.Sprintf("%.3f (%+.1f%%)", r.MAP, 100*r.MAPImprovement(t.Rows[baselineIdx])))
		}
	}
	appendf("\n")
	return string(b)
}

// Series is one scheme's curve for the paper's figures: average precision
// versus the number of returned images.
type Series struct {
	Scheme string
	X      []int
	Y      []float64
}

// FigureData is the data behind one of the paper's figures.
type FigureData struct {
	Name    string
	Dataset string
	Series  []Series
}

// FromTable converts a results table into figure series (one per scheme).
func FromTable(t *Table, name string) *FigureData {
	fig := &FigureData{Name: name, Dataset: t.Dataset}
	for _, r := range t.Rows {
		fig.Series = append(fig.Series, Series{Scheme: r.Scheme, X: append([]int(nil), t.Cutoffs...), Y: append([]float64(nil), r.Precision...)})
	}
	return fig
}

// Format renders the figure data as aligned text columns, one row per cutoff.
func (f *FigureData) Format() string {
	var b []byte
	appendf := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	appendf("%s — %s\n", f.Name, f.Dataset)
	appendf("%-10s", "#returned")
	for _, s := range f.Series {
		appendf("  %-12s", s.Scheme)
	}
	appendf("\n")
	if len(f.Series) == 0 {
		return string(b)
	}
	for i, x := range f.Series[0].X {
		appendf("%-10d", x)
		for _, s := range f.Series {
			appendf("  %-12.3f", s.Y[i])
		}
		appendf("\n")
	}
	return string(b)
}

// OrderingHolds reports whether the scheme ordering (given from best to
// worst) holds at every cutoff of the table within a tolerance: each scheme's
// precision must be at least the next scheme's minus tol.
func (t *Table) OrderingHolds(bestToWorst []string, tol float64) bool {
	rows := make([]Row, 0, len(bestToWorst))
	for _, name := range bestToWorst {
		r, ok := t.Row(name)
		if !ok {
			return false
		}
		rows = append(rows, r)
	}
	for ci := range t.Cutoffs {
		for i := 0; i+1 < len(rows); i++ {
			if rows[i].Precision[ci] < rows[i+1].Precision[ci]-tol {
				return false
			}
		}
	}
	return true
}

// SortRowsByMAP orders the table rows by descending MAP (stable).
func (t *Table) SortRowsByMAP() {
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i].MAP > t.Rows[j].MAP })
}
