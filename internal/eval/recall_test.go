package eval

import (
	"context"
	"fmt"
	"testing"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/kernel"
	"lrfcsvm/internal/linalg"
)

func TestRecallAtK(t *testing.T) {
	oracle := []int{4, 9, 1, 7, 3}
	cases := []struct {
		name   string
		approx []int
		k      int
		want   float64
	}{
		{"identical", []int{4, 9, 1, 7, 3}, 5, 1},
		{"reordered", []int{3, 7, 1, 9, 4}, 5, 1},
		{"partial overlap", []int{4, 9, 8, 6, 5}, 5, 0.4},
		{"disjoint", []int{10, 11, 12}, 3, 0},
		{"short approx", []int{4}, 5, 0.2},
		{"k beyond oracle", []int{4, 9, 1, 7, 3}, 50, 1},
		{"k zero", nil, 0, 1},
	}
	for _, c := range cases {
		if got := RecallAtK(oracle, c.approx, c.k); got != c.want {
			t.Errorf("%s: RecallAtK = %v, want %v", c.name, got, c.want)
		}
	}
}

// clusteredCollection draws a collection of well-separated clusters, the
// regime IVF pruning is built for.
func clusteredCollection(n, dim, centers int, seed uint64) []linalg.Vector {
	rng := linalg.NewRNG(seed)
	out := make([]linalg.Vector, n)
	for i := range out {
		c := i % centers
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = rng.Normal(0, 0.5)
		}
		v[c%dim] += float64(8 * (1 + c/dim))
		out[i] = v
	}
	return out
}

// TestANNRecallMatrix is the recall@K harness of the pruned query path: for
// every shard count x worker count combination it ranks through the centroid
// index and compares against the exhaustive oracle. Two properties are
// pinned: the pruned ranking is bit-identical across every combination
// (sharding and parallelism are pure execution detail), and recall@20 on
// clustered data stays high even at a narrow probe width.
func TestANNRecallMatrix(t *testing.T) {
	const n, dim, k = 336, 6, 20
	visual := clusteredCollection(n, dim, 8, 99)

	idx, err := kernel.BuildCentroidIndex(context.Background(), kernel.NewShardedSet(visual, 0),
		kernel.CentroidConfig{Clusters: 8})
	if err != nil {
		t.Fatal(err)
	}

	for _, probe := range []int{3, 117, 250} {
		// The exhaustive oracle: serial, default sharding.
		oracleCtx := &core.QueryContext{Visual: visual, Query: probe, Workers: 1, Batch: core.NewCollectionBatch(visual)}
		exact, err := core.Euclidean{}.RankTop(oracleCtx, k)
		if err != nil {
			t.Fatal(err)
		}
		oracle := make([]int, len(exact))
		for i, r := range exact {
			oracle[i] = r.Index
		}

		cells := idx.Probe(visual[probe], 2)
		lists := make([][]int32, len(cells))
		for i, c := range cells {
			lists[i] = idx.Members(c)
		}
		cands := core.CandidateSet{Lists: lists, TailStart: n}

		var reference []core.Ranked
		for _, shards := range []int{1, 2, 7} {
			batch := core.NewShardedCollectionBatch(visual, (n+shards-1)/shards)
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("probe=%d shards=%d workers=%d", probe, shards, workers)
				ctx := &core.QueryContext{Visual: visual, Query: probe, Workers: workers, Batch: batch}
				ranked, err := core.Euclidean{}.RankTopCandidates(ctx, cands, k, nil)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if reference == nil {
					reference = append([]core.Ranked(nil), ranked...)
				}
				if len(ranked) != len(reference) {
					t.Fatalf("%s: %d results, reference has %d", name, len(ranked), len(reference))
				}
				for i := range ranked {
					if ranked[i] != reference[i] {
						t.Fatalf("%s: result %d = %+v differs from reference %+v — pruned ranking depends on execution layout",
							name, i, ranked[i], reference[i])
					}
				}
				approx := make([]int, len(ranked))
				for i, r := range ranked {
					approx[i] = r.Index
				}
				if recall := RecallAtK(oracle, approx, k); recall < 0.95 {
					t.Errorf("%s: recall@%d = %.3f, want >= 0.95 on clustered data", name, k, recall)
				}
			}
		}
	}
}
