package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPrecisionAt(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	relevant := []bool{true, false, true, true, false}
	if got := PrecisionAt(scores, relevant, 1); got != 1 {
		t.Errorf("P@1 = %v", got)
	}
	if got := PrecisionAt(scores, relevant, 2); got != 0.5 {
		t.Errorf("P@2 = %v", got)
	}
	if got := PrecisionAt(scores, relevant, 5); got != 0.6 {
		t.Errorf("P@5 = %v", got)
	}
	// k beyond the collection size uses the whole collection.
	if got := PrecisionAt(scores, relevant, 50); got != 0.6 {
		t.Errorf("P@50 = %v", got)
	}
	if got := PrecisionAt(scores, relevant, 0); got != 0 {
		t.Errorf("P@0 = %v", got)
	}
}

func TestPrecisionCurveAndMAP(t *testing.T) {
	scores := []float64{5, 4, 3, 2, 1, 0}
	relevant := []bool{true, true, false, false, true, false}
	curve := PrecisionCurve(scores, relevant, []int{1, 2, 4})
	want := []float64{1, 1, 0.5}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-12 {
			t.Errorf("curve[%d] = %v, want %v", i, curve[i], want[i])
		}
	}
	if got := MeanAveragePrecision(curve); math.Abs(got-(2.5/3)) > 1e-12 {
		t.Errorf("MAP = %v", got)
	}
	if MeanAveragePrecision(nil) != 0 {
		t.Error("MAP of empty curve should be 0")
	}
}

// Property: precision is always within [0,1] and monotone under adding
// relevant items at the top.
func TestPropertyPrecisionBounds(t *testing.T) {
	f := func(raw []bool) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i := range scores {
			scores[i] = float64(len(raw) - i)
		}
		p := PrecisionAt(scores, raw, len(raw))
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowImprovement(t *testing.T) {
	base := Row{Scheme: "base", Precision: []float64{0.4, 0.2}, MAP: 0.3}
	better := Row{Scheme: "better", Precision: []float64{0.5, 0.25}, MAP: 0.375}
	if got := better.Improvement(base, 0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("improvement = %v, want 0.25", got)
	}
	if got := better.MAPImprovement(base); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MAP improvement = %v", got)
	}
	if got := better.Improvement(base, 5); got != 0 {
		t.Errorf("out-of-range improvement = %v", got)
	}
	zero := Row{Precision: []float64{0}, MAP: 0}
	if got := better.Improvement(zero, 0); got != 0 {
		t.Errorf("improvement over zero baseline = %v", got)
	}
}

func testTable() *Table {
	return &Table{
		Name:    "Table X",
		Dataset: "test",
		Queries: 10,
		Cutoffs: []int{20, 30},
		Rows: []Row{
			{Scheme: "Euclidean", Precision: []float64{0.4, 0.35}, MAP: 0.375},
			{Scheme: "RF-SVM", Precision: []float64{0.5, 0.45}, MAP: 0.475},
			{Scheme: "LRF-2SVMs", Precision: []float64{0.6, 0.5}, MAP: 0.55},
			{Scheme: "LRF-CSVM", Precision: []float64{0.7, 0.6}, MAP: 0.65},
		},
	}
}

func TestTableRowLookup(t *testing.T) {
	tbl := testTable()
	r, ok := tbl.Row("LRF-CSVM")
	if !ok || r.MAP != 0.65 {
		t.Errorf("Row lookup = %+v %v", r, ok)
	}
	if _, ok := tbl.Row("missing"); ok {
		t.Error("missing scheme found")
	}
}

func TestTableFormat(t *testing.T) {
	out := testTable().Format()
	for _, want := range []string{"Table X", "#TOP", "MAP", "LRF-CSVM", "+36.8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestTableOrderingHolds(t *testing.T) {
	tbl := testTable()
	if !tbl.OrderingHolds([]string{"LRF-CSVM", "LRF-2SVMs", "RF-SVM", "Euclidean"}, 0) {
		t.Error("true ordering rejected")
	}
	if tbl.OrderingHolds([]string{"Euclidean", "LRF-CSVM"}, 0) {
		t.Error("false ordering accepted")
	}
	// With a large tolerance the inverted ordering is accepted.
	if !tbl.OrderingHolds([]string{"RF-SVM", "LRF-2SVMs"}, 0.2) {
		t.Error("tolerance not applied")
	}
	if tbl.OrderingHolds([]string{"RF-SVM", "unknown"}, 0) {
		t.Error("unknown scheme should fail the check")
	}
}

func TestSortRowsByMAP(t *testing.T) {
	tbl := testTable()
	tbl.Rows[0], tbl.Rows[3] = tbl.Rows[3], tbl.Rows[0]
	tbl.SortRowsByMAP()
	if tbl.Rows[0].Scheme != "LRF-CSVM" || tbl.Rows[3].Scheme != "Euclidean" {
		t.Errorf("sorted order wrong: %v %v", tbl.Rows[0].Scheme, tbl.Rows[3].Scheme)
	}
}

func TestFigureDataFromTable(t *testing.T) {
	fig := FromTable(testTable(), "Figure 3")
	if len(fig.Series) != 4 {
		t.Fatalf("series count %d", len(fig.Series))
	}
	if fig.Series[0].X[0] != 20 || fig.Series[0].Y[0] != 0.4 {
		t.Errorf("series values wrong: %+v", fig.Series[0])
	}
	out := fig.Format()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "#returned") {
		t.Errorf("figure format missing headers:\n%s", out)
	}
}

func TestCutoffsMatchPaper(t *testing.T) {
	want := []int{20, 30, 40, 50, 60, 70, 80, 90, 100}
	if len(Cutoffs) != len(want) {
		t.Fatalf("cutoffs = %v", Cutoffs)
	}
	for i := range want {
		if Cutoffs[i] != want[i] {
			t.Fatalf("cutoffs = %v, want %v", Cutoffs, want)
		}
	}
}
