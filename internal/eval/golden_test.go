package eval

import (
	"strconv"
	"testing"

	"lrfcsvm/internal/dataset"
	"lrfcsvm/internal/feedbacklog"
)

// goldenConfig is the fixed-seed profile of the golden regression test.
// Workers is pinned to 1 because the per-query precision sums accumulate in
// completion order: with one worker the order (and therefore every floating
// point result) is fully deterministic.
func goldenConfig() Config {
	return Config{
		Dataset: dataset.Spec{Categories: 6, ImagesPerCategory: 20, Width: 32, Height: 32, Seed: 42, ExtraNoise: 10},
		Log: feedbacklog.SimulatorConfig{
			Sessions: 40, ReturnedPerSession: 12, NoiseRate: 0.05, ExplorationFraction: 0.35, Seed: 43,
		},
		Queries:         12,
		LabeledPerQuery: 15,
		Seed:            44,
		Workers:         1,
	}
}

// goldenMAP pins the MAP of every scheme on the golden profile, recorded
// from the current main with %.17g formatting (bit-exact for float64). The
// hot ranking path is heavily optimized (batched kernels, shared Gram
// caches, fused exponentials) under the contract that reported metrics stay
// bit-identical; this test catches any future refactor that silently drifts
// them. If a change intentionally alters the arithmetic, re-record these
// values and justify the drift in EXPERIMENTS.md.
var goldenMAP = map[string]string{
	"Euclidean": "0.29422361845972955",
	"RF-SVM":    "0.38934009406231629",
	"LRF-2SVMs": "0.39732730746619632",
	"LRF-CSVM":  "0.38258267195767198",
}

func TestGoldenMAPRegression(t *testing.T) {
	exp, err := Prepare(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	table, err := exp.Run("golden", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(goldenMAP) {
		t.Fatalf("%d schemes, want %d", len(table.Rows), len(goldenMAP))
	}
	for _, row := range table.Rows {
		got := strconv.FormatFloat(row.MAP, 'g', 17, 64)
		want, ok := goldenMAP[row.Scheme]
		if !ok {
			t.Errorf("unexpected scheme %q", row.Scheme)
			continue
		}
		if got != want {
			t.Errorf("%s MAP = %s, want %s (bit-exact)", row.Scheme, got, want)
		}
	}
}
