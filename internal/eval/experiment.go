package eval

import (
	"fmt"
	"runtime"
	"sync"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/dataset"
	"lrfcsvm/internal/features"
	"lrfcsvm/internal/feedbacklog"
	"lrfcsvm/internal/linalg"
	"lrfcsvm/internal/sparse"
)

// Config describes one full experiment: a dataset, a simulated feedback log,
// a query workload and the schemes to compare.
type Config struct {
	// Dataset is the synthetic collection to generate and index.
	Dataset dataset.Spec
	// Log configures the simulated user-feedback log collection.
	Log feedbacklog.SimulatorConfig
	// Queries is the number of random evaluation queries (200 in the paper).
	Queries int
	// LabeledPerQuery is the number of top-ranked images whose relevance the
	// simulated user judges before feedback learning (20 in the paper).
	LabeledPerQuery int
	// Cutoffs are the top-N evaluation cutoffs; nil selects the paper's
	// 20..100.
	Cutoffs []int
	// Seed drives query sampling.
	Seed uint64
	// Workers bounds the number of concurrent workers used for feature
	// extraction and query evaluation; <=0 selects GOMAXPROCS.
	Workers int
	// CSVM overrides the LRF-CSVM parameters; the zero value selects
	// core.DefaultCSVMParams.
	CSVM core.CSVMParams
	// SVM overrides the options shared by RF-SVM and LRF-2SVMs.
	SVM core.SVMOptions
}

// paperExtraNoise is the extra pixel noise applied to the synthetic
// datasets in the paper-reproduction profiles. It widens the visual semantic
// gap so the Euclidean baseline lands in a regime comparable to the paper's
// COREL results rather than trivially solving the synthetic categories.
const paperExtraNoise = 15

// Paper20 returns the configuration reproducing the paper's 20-Category
// experiment (Table 1 / Figure 3) at full scale.
func Paper20(seed uint64) Config {
	spec := dataset.Default20(seed)
	spec.ExtraNoise = paperExtraNoise
	return Config{
		Dataset:         spec,
		Log:             feedbacklog.DefaultSimulatorConfig(seed + 1),
		Queries:         200,
		LabeledPerQuery: 20,
		Seed:            seed + 2,
	}
}

// Paper50 returns the configuration reproducing the paper's 50-Category
// experiment (Table 2 / Figure 4) at full scale.
func Paper50(seed uint64) Config {
	spec := dataset.Default50(seed)
	spec.ExtraNoise = paperExtraNoise
	return Config{
		Dataset:         spec,
		Log:             feedbacklog.DefaultSimulatorConfig(seed + 1),
		Queries:         200,
		LabeledPerQuery: 20,
		Seed:            seed + 2,
	}
}

// CI20 and CI50 are scaled-down profiles of the two experiments used by unit
// tests and the default `go test -bench` run, keeping the protocol identical
// but shrinking the collection and the query count.
func CI20(seed uint64) Config {
	cfg := Paper20(seed)
	cfg.Dataset.Categories = 8
	cfg.Dataset.ImagesPerCategory = 24
	cfg.Dataset.Width, cfg.Dataset.Height = 32, 32
	cfg.Log.Sessions = 60
	cfg.Log.ReturnedPerSession = 12
	cfg.Queries = 24
	return cfg
}

// CI50 is the scaled-down 50-Category profile.
func CI50(seed uint64) Config {
	cfg := CI20(seed)
	cfg.Dataset.Categories = 12
	return cfg
}

func (c Config) withDefaults() Config {
	if len(c.Cutoffs) == 0 {
		c.Cutoffs = append([]int(nil), Cutoffs...)
	}
	if c.LabeledPerQuery <= 0 {
		c.LabeledPerQuery = 20
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Experiment is a prepared experiment: the collection's extracted visual
// descriptors, the simulated feedback log, and the ground-truth labels the
// automatic relevance judge uses.
type Experiment struct {
	Config Config

	Visual     []linalg.Vector
	LogVectors []*sparse.Vector
	Labels     []int
	LogStats   feedbacklog.Stats

	// batch is the collection-level precomputation shared by every query
	// context the experiment hands out.
	batch *core.CollectionBatch
}

// Prepare generates the dataset, extracts and normalizes the visual
// descriptors, and collects the simulated feedback log.
func Prepare(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	gen, err := dataset.NewGenerator(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("eval: dataset: %w", err)
	}
	var extractor features.Extractor
	raw := extractor.ExtractAll(gen, cfg.Workers)
	norm, err := features.FitNormalizer(raw)
	if err != nil {
		return nil, fmt.Errorf("eval: normalizer: %w", err)
	}
	visual := norm.ApplyAll(raw)
	labels := gen.Labels()
	log, err := feedbacklog.Simulate(visual, labels, cfg.Log)
	if err != nil {
		return nil, fmt.Errorf("eval: log simulation: %w", err)
	}
	return &Experiment{
		Config:     cfg,
		Visual:     visual,
		LogVectors: log.RelevanceVectors(),
		Labels:     labels,
		LogStats:   log.Stats(),
		batch:      core.NewCollectionBatch(visual),
	}, nil
}

// DefaultSchemes returns the four schemes of the paper's comparison in the
// order of the paper's tables: Euclidean, RF-SVM, LRF-2SVMs, LRF-CSVM.
func (e *Experiment) DefaultSchemes() []core.Scheme {
	return []core.Scheme{
		core.Euclidean{},
		core.RFSVM{Options: e.Config.SVM},
		core.LRF2SVMs{Options: e.Config.SVM},
		core.LRFCSVM{Params: e.Config.CSVM},
	}
}

// QueryContext builds the query context of one evaluation query: the top
// LabeledPerQuery images by Euclidean visual distance are judged by the
// automatic relevance oracle (same category as the query), exactly the
// paper's protocol.
func (e *Experiment) QueryContext(query int) *core.QueryContext {
	dists := make([]float64, len(e.Visual))
	for i := range e.Visual {
		dists[i] = e.Visual[query].SquaredDistance(e.Visual[i])
	}
	order := linalg.ArgsortAsc(dists)
	k := e.Config.LabeledPerQuery
	if k > len(order) {
		k = len(order)
	}
	labeled := make([]core.LabeledExample, 0, k)
	for _, idx := range order[:k] {
		label := -1.0
		if e.Labels[idx] == e.Labels[query] {
			label = 1.0
		}
		labeled = append(labeled, core.LabeledExample{Index: idx, Label: label})
	}
	return &core.QueryContext{
		Visual:     e.Visual,
		LogVectors: e.LogVectors,
		Query:      query,
		Labeled:    labeled,
		Workers:    e.Config.Workers,
		Batch:      e.batch,
	}
}

// SampleQueries draws the evaluation query set (uniformly at random with the
// experiment seed, without replacement when possible).
func (e *Experiment) SampleQueries() []int {
	rng := linalg.NewRNG(e.Config.Seed)
	n := len(e.Visual)
	q := e.Config.Queries
	if q <= n {
		perm := rng.Perm(n)
		return perm[:q]
	}
	out := make([]int, q)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

// Relevant returns the relevance oracle for one query: image i is relevant
// iff it shares the query's category.
func (e *Experiment) Relevant(query int) []bool {
	out := make([]bool, len(e.Labels))
	for i, l := range e.Labels {
		out[i] = l == e.Labels[query]
	}
	return out
}

// SchemeResult is the averaged evaluation of one scheme.
type SchemeResult struct {
	Row    Row
	Errors int // queries that failed (excluded from the average)
}

// RunScheme evaluates one scheme over the experiment's query set and returns
// its averaged precision row.
func (e *Experiment) RunScheme(scheme core.Scheme, queries []int) (SchemeResult, error) {
	cutoffs := e.Config.Cutoffs
	sums := make([]float64, len(cutoffs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCount := 0
	evaluated := 0

	work := make(chan int)
	workers := e.Config.Workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range work {
				ctx := e.QueryContext(q)
				if workers > 1 {
					// Query-level parallelism already saturates the
					// workers budget; keep each ranking serial instead
					// of multiplying the two levels.
					ctx.Workers = 1
				}
				scores, err := scheme.Rank(ctx)
				mu.Lock()
				if err != nil {
					errCount++
					mu.Unlock()
					continue
				}
				relevant := e.Relevant(q)
				for ci, k := range cutoffs {
					sums[ci] += PrecisionAt(scores, relevant, k)
				}
				evaluated++
				mu.Unlock()
			}
		}()
	}
	for _, q := range queries {
		work <- q
	}
	close(work)
	wg.Wait()

	if evaluated == 0 {
		return SchemeResult{}, fmt.Errorf("eval: scheme %s failed on every query", scheme.Name())
	}
	curve := make([]float64, len(cutoffs))
	for i := range curve {
		curve[i] = sums[i] / float64(evaluated)
	}
	return SchemeResult{
		Row:    Row{Scheme: scheme.Name(), Precision: curve, MAP: MeanAveragePrecision(curve)},
		Errors: errCount,
	}, nil
}

// Run evaluates the given schemes (or the default four when nil) over the
// experiment's query workload and assembles the results table.
func (e *Experiment) Run(name string, schemes []core.Scheme) (*Table, error) {
	if schemes == nil {
		schemes = e.DefaultSchemes()
	}
	queries := e.SampleQueries()
	table := &Table{
		Name:    name,
		Dataset: fmt.Sprintf("%d-Category (%d images, %d log sessions)", e.Config.Dataset.Categories, len(e.Visual), e.LogStats.Sessions),
		Queries: len(queries),
		Cutoffs: e.Config.Cutoffs,
	}
	for _, s := range schemes {
		res, err := e.RunScheme(s, queries)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, res.Row)
	}
	return table, nil
}
