package eval

// RecallAtK measures candidate-generation quality: the fraction of the
// exhaustive oracle's top-k images that the approximate ranking also placed
// in its own top k. 1.0 means pruning lost nothing at this depth; the bench
// harness records it next to the latency numbers so a recall regression is
// as visible as a slowdown. Both arguments are ranked image indices, best
// first; k is clamped to the oracle's length.
func RecallAtK(oracle, approx []int, k int) float64 {
	if k > len(oracle) {
		k = len(oracle)
	}
	if k <= 0 {
		return 1
	}
	want := make(map[int]struct{}, k)
	for _, idx := range oracle[:k] {
		want[idx] = struct{}{}
	}
	limit := k
	if limit > len(approx) {
		limit = len(approx)
	}
	hits := 0
	for _, idx := range approx[:limit] {
		if _, ok := want[idx]; ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}
