package eval

import (
	"testing"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/dataset"
	"lrfcsvm/internal/feedbacklog"
)

// tinyConfig is a very small experiment used by the unit tests; the CI20/50
// profiles are used by the integration test and the benchmarks.
func tinyConfig(seed uint64) Config {
	return Config{
		Dataset: dataset.Spec{Categories: 6, ImagesPerCategory: 20, Width: 32, Height: 32, Seed: seed, ExtraNoise: 10},
		Log: feedbacklog.SimulatorConfig{
			Sessions: 40, ReturnedPerSession: 12, NoiseRate: 0.05, ExplorationFraction: 0.35, Seed: seed + 1,
		},
		Queries:         10,
		LabeledPerQuery: 15,
		Seed:            seed + 2,
	}
}

func TestPaperConfigs(t *testing.T) {
	p20 := Paper20(1)
	if p20.Dataset.Categories != 20 || p20.Dataset.ImagesPerCategory != 100 || p20.Queries != 200 || p20.LabeledPerQuery != 20 {
		t.Errorf("Paper20 = %+v", p20)
	}
	p50 := Paper50(1)
	if p50.Dataset.Categories != 50 {
		t.Errorf("Paper50 categories = %d", p50.Dataset.Categories)
	}
	if p20.Log.Sessions != 150 || p20.Log.ReturnedPerSession != 20 {
		t.Errorf("Paper20 log config = %+v", p20.Log)
	}
	ci := CI20(1)
	if ci.Dataset.Categories >= 20 || ci.Queries >= 200 {
		t.Errorf("CI20 not scaled down: %+v", ci)
	}
	if err := ci.Dataset.Validate(); err != nil {
		t.Errorf("CI20 dataset invalid: %v", err)
	}
	if CI50(1).Dataset.Categories <= CI20(1).Dataset.Categories {
		t.Error("CI50 should have more categories than CI20")
	}
}

func TestPrepare(t *testing.T) {
	exp, err := Prepare(tinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 6 * 20
	if len(exp.Visual) != n || len(exp.LogVectors) != n || len(exp.Labels) != n {
		t.Fatalf("prepared sizes %d/%d/%d", len(exp.Visual), len(exp.LogVectors), len(exp.Labels))
	}
	if exp.LogStats.Sessions != 40 {
		t.Errorf("log sessions = %d", exp.LogStats.Sessions)
	}
	// Visual descriptors must be normalized (roughly zero-mean).
	var mean float64
	for _, v := range exp.Visual {
		mean += v[0]
	}
	mean /= float64(n)
	if mean > 0.5 || mean < -0.5 {
		t.Errorf("descriptors do not look normalized: mean of first component = %v", mean)
	}
}

func TestPrepareRejectsBadConfig(t *testing.T) {
	cfg := tinyConfig(3)
	cfg.Dataset.Categories = 0
	if _, err := Prepare(cfg); err == nil {
		t.Error("expected error for invalid dataset spec")
	}
	cfg = tinyConfig(3)
	cfg.Log.Sessions = -1
	if _, err := Prepare(cfg); err == nil {
		t.Error("expected error for invalid log config")
	}
}

func TestQueryContextProtocol(t *testing.T) {
	exp, err := Prepare(tinyConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx := exp.QueryContext(7)
	if ctx.Query != 7 {
		t.Errorf("query = %d", ctx.Query)
	}
	if len(ctx.Labeled) != 15 {
		t.Errorf("labeled count = %d, want 15", len(ctx.Labeled))
	}
	// The query itself is its own nearest neighbor, so it must be labeled +1.
	foundQuery := false
	for _, ex := range ctx.Labeled {
		if ex.Index == 7 {
			foundQuery = true
			if ex.Label != 1 {
				t.Error("query image labeled irrelevant")
			}
		}
		// Labels must agree with the category oracle.
		want := -1.0
		if exp.Labels[ex.Index] == exp.Labels[7] {
			want = 1.0
		}
		if ex.Label != want {
			t.Errorf("label of image %d = %v, want %v", ex.Index, ex.Label, want)
		}
	}
	if !foundQuery {
		t.Error("query image not among the labeled examples")
	}
}

func TestSampleQueriesDeterministicAndDistinct(t *testing.T) {
	exp, err := Prepare(tinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	a := exp.SampleQueries()
	b := exp.SampleQueries()
	if len(a) != exp.Config.Queries {
		t.Fatalf("sampled %d queries", len(a))
	}
	seen := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("query sampling not deterministic")
		}
		if a[i] < 0 || a[i] >= len(exp.Visual) {
			t.Fatalf("query %d out of range", a[i])
		}
		if seen[a[i]] {
			t.Error("duplicate query despite collection being large enough")
		}
		seen[a[i]] = true
	}
}

func TestRelevantOracle(t *testing.T) {
	exp, err := Prepare(tinyConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	rel := exp.Relevant(0)
	count := 0
	for i, r := range rel {
		if r != (exp.Labels[i] == exp.Labels[0]) {
			t.Fatalf("oracle wrong at %d", i)
		}
		if r {
			count++
		}
	}
	if count != 20 {
		t.Errorf("query 0 has %d relevant images, want 20 (its whole category)", count)
	}
}

func TestRunSchemeAndTable(t *testing.T) {
	exp, err := Prepare(tinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	queries := exp.SampleQueries()
	res, err := exp.RunScheme(core.Euclidean{}, queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Row.Precision) != len(Cutoffs) {
		t.Fatalf("precision curve length %d", len(res.Row.Precision))
	}
	for i, p := range res.Row.Precision {
		if p < 0 || p > 1 {
			t.Errorf("precision[%d] = %v", i, p)
		}
	}
	if res.Row.MAP <= 0 {
		t.Errorf("MAP = %v", res.Row.MAP)
	}

	table, err := exp.Run("tiny", []core.Scheme{core.Euclidean{}, core.RFSVM{Options: exp.Config.SVM}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 || table.Queries != len(queries) {
		t.Fatalf("table shape %+v", table)
	}
	if _, ok := table.Row("Euclidean"); !ok {
		t.Error("Euclidean row missing")
	}
}

// TestIntegrationSchemeOrdering is the repository's core integration test:
// on a scaled-down but otherwise faithful version of the paper's protocol,
// the log-based relevance-feedback schemes must outperform the regular
// RF-SVM scheme, which in turn must not fall below the Euclidean baseline —
// the central qualitative claim of the paper.
func TestIntegrationSchemeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	cfg := CI20(42)
	exp, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	table, err := exp.Run("CI 20-Category", nil)
	if err != nil {
		t.Fatal(err)
	}
	eucl, _ := table.Row("Euclidean")
	rf, _ := table.Row("RF-SVM")
	two, _ := table.Row("LRF-2SVMs")
	csvm, _ := table.Row("LRF-CSVM")
	t.Logf("\n%s", table.Format())

	if rf.MAP < eucl.MAP-0.05 {
		t.Errorf("RF-SVM MAP %.3f below Euclidean %.3f", rf.MAP, eucl.MAP)
	}
	if two.MAP <= rf.MAP {
		t.Errorf("LRF-2SVMs MAP %.3f not above RF-SVM %.3f: the log adds nothing", two.MAP, rf.MAP)
	}
	if csvm.MAP <= rf.MAP {
		t.Errorf("LRF-CSVM MAP %.3f not above RF-SVM %.3f", csvm.MAP, rf.MAP)
	}
	// The two log-based schemes must be in the same league (the paper ranks
	// LRF-CSVM first; on the synthetic substrate they are statistically
	// close — see EXPERIMENTS.md).
	if csvm.MAP < two.MAP-0.08 {
		t.Errorf("LRF-CSVM MAP %.3f far below LRF-2SVMs %.3f", csvm.MAP, two.MAP)
	}
}
