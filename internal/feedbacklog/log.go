// Package feedbacklog implements the user-feedback log substrate of the
// paper: log sessions, the relevance matrix R whose columns are the per-image
// log relevance vectors r_i, and a simulator that collects log sessions the
// way the paper describes collecting them from real users (Section 6.3),
// including judgment noise.
package feedbacklog

import (
	"fmt"
	"sort"

	"lrfcsvm/internal/linalg"
	"lrfcsvm/internal/sparse"
)

// Judgment is a user relevance judgment recorded in the log: +1 for
// relevant, -1 for irrelevant. Images not shown in a session have no
// judgment (0 in the relevance matrix).
type Judgment int8

// Judgment values.
const (
	Relevant   Judgment = 1
	Irrelevant Judgment = -1
)

// Session is one unit of user feedback: a single relevance-feedback round in
// which the user judged the images returned for a query.
type Session struct {
	// ID is the session's position in the log (assigned by Log.AddSession).
	ID int
	// QueryImage is the image index the (simulated) user used as the query.
	QueryImage int
	// TargetCategory is the semantic category the user had in mind. It is
	// metadata for analysis; the learning algorithms never see it.
	TargetCategory int
	// Judgments maps image index -> judgment for every image shown in this
	// session.
	Judgments map[int]Judgment
}

// Log is an ordered collection of feedback sessions over a fixed image
// collection. It is the log database of the paper: a relevance matrix with
// one row per session and one column per image.
type Log struct {
	numImages int
	sessions  []Session
}

// NewLog creates an empty log over a collection of numImages images.
func NewLog(numImages int) *Log {
	if numImages <= 0 {
		panic(fmt.Sprintf("feedbacklog: non-positive image count %d", numImages))
	}
	return &Log{numImages: numImages}
}

// NumImages returns the size of the image collection the log refers to.
func (l *Log) NumImages() int { return l.numImages }

// GrowImages extends the log's collection coverage by added images (appended
// at the end of the index space). Existing sessions are untouched; the new
// images simply have no judgments yet. The retrieval engine calls this when
// images are ingested into a live collection.
func (l *Log) GrowImages(added int) {
	if added < 0 {
		panic(fmt.Sprintf("feedbacklog: negative image growth %d", added))
	}
	l.numImages += added
}

// Clone returns a snapshot copy of the log: the session list is copied, so
// the original can keep growing while the clone is serialized or inspected.
// The per-session judgment maps are shared — they are treated as immutable
// once added (AddSession callers hand over ownership).
func (l *Log) Clone() *Log {
	return &Log{numImages: l.numImages, sessions: append([]Session(nil), l.sessions...)}
}

// NumSessions returns the number of recorded sessions, i.e. the
// dimensionality M of the per-image log relevance vectors.
func (l *Log) NumSessions() int { return len(l.sessions) }

// Sessions returns the recorded sessions in insertion order. The returned
// slice is shared; callers must not modify it.
func (l *Log) Sessions() []Session { return l.sessions }

// AddSession appends a session to the log, assigning its ID. Judgments that
// reference images outside the collection are rejected, as is a query image
// outside it — a session replayed from a corrupt store must not smuggle an
// out-of-range query into the log, where it would only explode much later
// in the query path.
func (l *Log) AddSession(s Session) (int, error) {
	if len(s.Judgments) == 0 {
		return 0, fmt.Errorf("feedbacklog: session with no judgments")
	}
	if s.QueryImage < 0 || s.QueryImage >= l.numImages {
		return 0, fmt.Errorf("feedbacklog: query image %d outside collection of %d images", s.QueryImage, l.numImages)
	}
	// Validate in ascending image order so a session with several bad
	// judgments reports the same error on every run — replay tooling and
	// tests compare these messages, and map order would shuffle them.
	imgs := make([]int, 0, len(s.Judgments))
	for img := range s.Judgments {
		imgs = append(imgs, img)
	}
	sort.Ints(imgs)
	for _, img := range imgs {
		if img < 0 || img >= l.numImages {
			return 0, fmt.Errorf("feedbacklog: judgment for image %d outside collection of %d images", img, l.numImages)
		}
		if j := s.Judgments[img]; j != Relevant && j != Irrelevant {
			return 0, fmt.Errorf("feedbacklog: invalid judgment %d for image %d", j, img)
		}
	}
	s.ID = len(l.sessions)
	l.sessions = append(l.sessions, s)
	return s.ID, nil
}

// RelevanceVector returns the log relevance vector r_i of one image: a
// sparse vector with one component per session, +1/-1 where the image was
// judged and 0 elsewhere.
func (l *Log) RelevanceVector(image int) *sparse.Vector {
	if image < 0 || image >= l.numImages {
		panic(fmt.Sprintf("feedbacklog: image %d out of range [0,%d)", image, l.numImages))
	}
	v := sparse.New(len(l.sessions))
	for sid, s := range l.sessions {
		if j, ok := s.Judgments[image]; ok {
			v.Set(sid, float64(j))
		}
	}
	return v
}

// RelevanceVectors returns the log relevance vectors of every image, indexed
// by image index. This is the column view of the relevance matrix R.
func (l *Log) RelevanceVectors() []*sparse.Vector {
	out := make([]*sparse.Vector, l.numImages)
	for i := range out {
		out[i] = sparse.New(len(l.sessions))
	}
	for sid, s := range l.sessions {
		// Deterministic iteration keeps the construction reproducible even
		// though map order is random: entries are set per image, and Set
		// keeps per-vector entries sorted by session index anyway.
		imgs := make([]int, 0, len(s.Judgments))
		for img := range s.Judgments {
			imgs = append(imgs, img)
		}
		sort.Ints(imgs)
		for _, img := range imgs {
			out[img].Set(sid, float64(s.Judgments[img]))
		}
	}
	return out
}

// ExtendRelevanceVectors returns the current relevance vectors of every
// image, reusing a column view previously built when the log had
// prevSessions sessions and covered len(prev) images (prev as returned by
// RelevanceVectors or an earlier ExtendRelevanceVectors call). The result is
// element-wise equal to a fresh RelevanceVectors call, but costs
// O(images + judgments added since prev) instead of O(images + all
// judgments): unchanged columns share their entry storage with prev, columns
// judged since then get their new components appended copy-on-write, and
// images added by GrowImages since prev get empty columns. When nothing
// changed, prev itself is returned, so downstream caches keyed on slice
// identity keep hitting. prev is never mutated.
func (l *Log) ExtendRelevanceVectors(prev []*sparse.Vector, prevSessions int) []*sparse.Vector {
	if prevSessions < 0 || prevSessions > len(l.sessions) || len(prev) > l.numImages {
		panic(fmt.Sprintf("feedbacklog: stale column view (%d images at %d sessions) cannot extend to %d images at %d sessions",
			len(prev), prevSessions, l.numImages, len(l.sessions)))
	}
	if prevSessions == len(l.sessions) && len(prev) == l.numImages {
		return prev
	}
	dim := len(l.sessions)
	out := make([]*sparse.Vector, l.numImages)
	for i, v := range prev {
		out[i] = &sparse.Vector{Dim: dim, Entries: v.Entries}
	}
	for i := len(prev); i < l.numImages; i++ {
		out[i] = sparse.New(dim)
	}
	for sid := prevSessions; sid < len(l.sessions); sid++ {
		s := l.sessions[sid]
		imgs := make([]int, 0, len(s.Judgments))
		for img := range s.Judgments {
			imgs = append(imgs, img)
		}
		sort.Ints(imgs)
		for _, img := range imgs {
			// Sessions are appended in id order and every existing entry of
			// the column has a smaller session index, so the new component
			// goes at the end; the full slice expression forces the append
			// to copy instead of scribbling on storage shared with prev.
			e := out[img].Entries
			out[img].Entries = append(e[:len(e):len(e)], sparse.Entry{Index: sid, Value: float64(s.Judgments[img])})
		}
	}
	return out
}

// Stats summarizes a log.
type Stats struct {
	Sessions          int
	JudgedImages      int // distinct images with at least one judgment
	TotalJudgments    int // sum over sessions of judged images
	PositiveJudgments int
	NegativeJudgments int
	MeanPerSession    float64 // judgments per session
	CoverageFraction  float64 // judged images / collection size
}

// Stats computes summary statistics of the log.
func (l *Log) Stats() Stats {
	st := Stats{Sessions: len(l.sessions)}
	judged := make(map[int]bool)
	for _, s := range l.sessions {
		st.TotalJudgments += len(s.Judgments)
		//cbirlint:ignore determinism integer counters and set membership are iteration-order independent
		for img, j := range s.Judgments {
			judged[img] = true
			if j == Relevant {
				st.PositiveJudgments++
			} else {
				st.NegativeJudgments++
			}
		}
	}
	st.JudgedImages = len(judged)
	if st.Sessions > 0 {
		st.MeanPerSession = float64(st.TotalJudgments) / float64(st.Sessions)
	}
	if l.numImages > 0 {
		st.CoverageFraction = float64(st.JudgedImages) / float64(l.numImages)
	}
	return st
}

// DenseRelevanceMatrix materializes the relevance matrix R as a dense
// sessions x images matrix. Intended for tests and analysis tools, not for
// the learning path, which uses the sparse column view.
func (l *Log) DenseRelevanceMatrix() *linalg.Matrix {
	m := linalg.NewMatrix(len(l.sessions), l.numImages)
	for sid, s := range l.sessions {
		//cbirlint:ignore determinism each (session, image) cell is written exactly once; order cannot show
		for img, j := range s.Judgments {
			m.Set(sid, img, float64(j))
		}
	}
	return m
}
