package feedbacklog

import (
	"testing"

	"lrfcsvm/internal/linalg"
)

// clusteredFeatures builds a tiny synthetic collection with clear visual
// clusters so the simulated retrieval has structure: nPerCat images per
// category, category c centered at (3c, 0).
func clusteredFeatures(nCat, nPerCat int, seed uint64) ([]linalg.Vector, []int) {
	rng := linalg.NewRNG(seed)
	var feats []linalg.Vector
	var labels []int
	for c := 0; c < nCat; c++ {
		for i := 0; i < nPerCat; i++ {
			feats = append(feats, linalg.Vector{float64(3*c) + rng.Normal(0, 0.5), rng.Normal(0, 0.5)})
			labels = append(labels, c)
		}
	}
	return feats, labels
}

func TestSimulatorConfigValidate(t *testing.T) {
	if err := DefaultSimulatorConfig(1).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []SimulatorConfig{
		{Sessions: 0, ReturnedPerSession: 20},
		{Sessions: 10, ReturnedPerSession: 0},
		{Sessions: 10, ReturnedPerSession: 20, NoiseRate: -0.1},
		{Sessions: 10, ReturnedPerSession: 20, NoiseRate: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSimulateBasicShape(t *testing.T) {
	feats, labels := clusteredFeatures(4, 10, 3)
	cfg := SimulatorConfig{Sessions: 25, ReturnedPerSession: 8, NoiseRate: 0, Seed: 7}
	log, err := Simulate(feats, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if log.NumSessions() != 25 {
		t.Fatalf("sessions = %d", log.NumSessions())
	}
	for _, s := range log.Sessions() {
		if len(s.Judgments) != 8 {
			t.Errorf("session %d judged %d images, want 8", s.ID, len(s.Judgments))
		}
		// The query itself is in the returned list and must be judged
		// relevant when there is no noise.
		if j, ok := s.Judgments[s.QueryImage]; !ok || j != Relevant {
			t.Errorf("session %d: query image judgment = %v (present=%v)", s.ID, j, ok)
		}
	}
}

func TestSimulateNoiseFreeJudgmentsMatchCategories(t *testing.T) {
	feats, labels := clusteredFeatures(3, 12, 5)
	log, err := Simulate(feats, labels, SimulatorConfig{Sessions: 30, ReturnedPerSession: 10, NoiseRate: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range log.Sessions() {
		for img, j := range s.Judgments {
			want := Irrelevant
			if labels[img] == s.TargetCategory {
				want = Relevant
			}
			if j != want {
				t.Fatalf("session %d image %d judged %v, want %v", s.ID, img, j, want)
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	feats, labels := clusteredFeatures(3, 10, 9)
	cfg := SimulatorConfig{Sessions: 15, ReturnedPerSession: 6, NoiseRate: 0.1, Seed: 42}
	a, err := Simulate(feats, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(feats, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sessions() {
		sa, sb := a.Sessions()[i], b.Sessions()[i]
		if sa.QueryImage != sb.QueryImage || len(sa.Judgments) != len(sb.Judgments) {
			t.Fatalf("session %d differs between identical runs", i)
		}
		for img, j := range sa.Judgments {
			if sb.Judgments[img] != j {
				t.Fatalf("session %d image %d differs", i, img)
			}
		}
	}
}

func TestSimulateNoiseRateApproximate(t *testing.T) {
	feats, labels := clusteredFeatures(2, 30, 13)
	noisy, err := Simulate(feats, labels, SimulatorConfig{Sessions: 200, ReturnedPerSession: 15, NoiseRate: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flipped, total := 0, 0
	for _, s := range noisy.Sessions() {
		for img, j := range s.Judgments {
			want := Irrelevant
			if labels[img] == s.TargetCategory {
				want = Relevant
			}
			if j != want {
				flipped++
			}
			total++
		}
	}
	frac := float64(flipped) / float64(total)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("observed flip rate %v, want ~0.2", frac)
	}
}

func TestSimulateErrors(t *testing.T) {
	feats, labels := clusteredFeatures(2, 5, 1)
	if _, err := Simulate(nil, nil, DefaultSimulatorConfig(1)); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := Simulate(feats, labels[:3], DefaultSimulatorConfig(1)); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := Simulate(feats, labels, SimulatorConfig{Sessions: -1, ReturnedPerSession: 5}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSimulateReturnedLargerThanCollection(t *testing.T) {
	feats, labels := clusteredFeatures(2, 3, 1) // 6 images
	log, err := Simulate(feats, labels, SimulatorConfig{Sessions: 4, ReturnedPerSession: 50, NoiseRate: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range log.Sessions() {
		if len(s.Judgments) != 6 {
			t.Errorf("session judged %d images, want entire collection (6)", len(s.Judgments))
		}
	}
}

func TestSimulatedLogVectorsCorrelateWithinCategory(t *testing.T) {
	// The log structure the coupled SVM exploits: images of the same
	// category should have more similar log vectors than images of
	// different categories.
	feats, labels := clusteredFeatures(4, 15, 21)
	log, err := Simulate(feats, labels, SimulatorConfig{Sessions: 80, ReturnedPerSession: 12, NoiseRate: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	vectors := log.RelevanceVectors()
	var sameDot, diffDot float64
	var nSame, nDiff int
	for i := 0; i < len(vectors); i++ {
		for j := i + 1; j < len(vectors); j++ {
			d := vectors[i].Dot(vectors[j])
			if labels[i] == labels[j] {
				sameDot += d
				nSame++
			} else {
				diffDot += d
				nDiff++
			}
		}
	}
	sameDot /= float64(nSame)
	diffDot /= float64(nDiff)
	if sameDot <= diffDot {
		t.Errorf("same-category log similarity %v not greater than cross-category %v", sameDot, diffDot)
	}
}
