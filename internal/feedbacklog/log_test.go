package feedbacklog

import (
	"testing"
)

func TestNewLogPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLog(0)
}

func TestAddSessionValidation(t *testing.T) {
	l := NewLog(10)
	if _, err := l.AddSession(Session{Judgments: map[int]Judgment{}}); err == nil {
		t.Error("empty session accepted")
	}
	if _, err := l.AddSession(Session{Judgments: map[int]Judgment{10: Relevant}}); err == nil {
		t.Error("out-of-range image accepted")
	}
	if _, err := l.AddSession(Session{Judgments: map[int]Judgment{3: 2}}); err == nil {
		t.Error("invalid judgment accepted")
	}
	id, err := l.AddSession(Session{Judgments: map[int]Judgment{3: Relevant, 4: Irrelevant}})
	if err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}
	if id != 0 || l.NumSessions() != 1 {
		t.Errorf("id=%d sessions=%d", id, l.NumSessions())
	}
}

func TestSessionIDsSequential(t *testing.T) {
	l := NewLog(5)
	for i := 0; i < 3; i++ {
		id, err := l.AddSession(Session{Judgments: map[int]Judgment{i: Relevant}})
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Errorf("session %d got id %d", i, id)
		}
	}
	if l.Sessions()[2].ID != 2 {
		t.Error("stored session ID mismatch")
	}
}

func TestRelevanceVector(t *testing.T) {
	l := NewLog(6)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 1: Irrelevant})
	mustAdd(t, l, map[int]Judgment{0: Relevant, 2: Relevant})
	mustAdd(t, l, map[int]Judgment{1: Relevant, 0: Irrelevant})

	r0 := l.RelevanceVector(0)
	if r0.Dim != 3 {
		t.Fatalf("r0 dim = %d, want 3", r0.Dim)
	}
	if r0.At(0) != 1 || r0.At(1) != 1 || r0.At(2) != -1 {
		t.Errorf("r0 = %v", r0.ToDense())
	}
	r5 := l.RelevanceVector(5)
	if r5.NNZ() != 0 {
		t.Errorf("never-judged image has %d non-zeros", r5.NNZ())
	}
}

func TestRelevanceVectorsMatchSingle(t *testing.T) {
	l := NewLog(4)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 3: Irrelevant})
	mustAdd(t, l, map[int]Judgment{1: Relevant, 3: Relevant})
	all := l.RelevanceVectors()
	if len(all) != 4 {
		t.Fatalf("got %d vectors", len(all))
	}
	for img := 0; img < 4; img++ {
		if !all[img].Equal(l.RelevanceVector(img), 0) {
			t.Errorf("vector %d differs between bulk and single computation", img)
		}
	}
}

func TestRelevanceVectorOutOfRangePanics(t *testing.T) {
	l := NewLog(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.RelevanceVector(2)
}

func TestDenseRelevanceMatrix(t *testing.T) {
	l := NewLog(3)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 2: Irrelevant})
	m := l.DenseRelevanceMatrix()
	if m.Rows != 1 || m.Cols != 3 {
		t.Fatalf("matrix shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 1 || m.At(0, 1) != 0 || m.At(0, 2) != -1 {
		t.Errorf("matrix row = %v", m.Row(0))
	}
}

func TestStats(t *testing.T) {
	l := NewLog(10)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 1: Irrelevant, 2: Irrelevant})
	mustAdd(t, l, map[int]Judgment{0: Relevant, 3: Relevant})
	st := l.Stats()
	if st.Sessions != 2 {
		t.Errorf("Sessions = %d", st.Sessions)
	}
	if st.TotalJudgments != 5 || st.PositiveJudgments != 3 || st.NegativeJudgments != 2 {
		t.Errorf("judgment counts = %+v", st)
	}
	if st.JudgedImages != 4 {
		t.Errorf("JudgedImages = %d, want 4", st.JudgedImages)
	}
	if st.MeanPerSession != 2.5 {
		t.Errorf("MeanPerSession = %v", st.MeanPerSession)
	}
	if st.CoverageFraction != 0.4 {
		t.Errorf("CoverageFraction = %v", st.CoverageFraction)
	}
}

func TestEmptyLogStats(t *testing.T) {
	st := NewLog(5).Stats()
	if st.Sessions != 0 || st.TotalJudgments != 0 || st.MeanPerSession != 0 {
		t.Errorf("empty log stats = %+v", st)
	}
}

func mustAdd(t *testing.T, l *Log, judgments map[int]Judgment) {
	t.Helper()
	if _, err := l.AddSession(Session{Judgments: judgments}); err != nil {
		t.Fatal(err)
	}
}
