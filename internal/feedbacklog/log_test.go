package feedbacklog

import (
	"testing"

	"lrfcsvm/internal/linalg"
)

func TestNewLogPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLog(0)
}

func TestAddSessionValidation(t *testing.T) {
	l := NewLog(10)
	if _, err := l.AddSession(Session{Judgments: map[int]Judgment{}}); err == nil {
		t.Error("empty session accepted")
	}
	if _, err := l.AddSession(Session{Judgments: map[int]Judgment{10: Relevant}}); err == nil {
		t.Error("out-of-range image accepted")
	}
	if _, err := l.AddSession(Session{Judgments: map[int]Judgment{3: 2}}); err == nil {
		t.Error("invalid judgment accepted")
	}
	// A query image outside the collection must be rejected too: a corrupt
	// snapshot or journal record would otherwise smuggle it into the log
	// and it would only explode later in the query path.
	if _, err := l.AddSession(Session{QueryImage: 10, Judgments: map[int]Judgment{3: Relevant}}); err == nil {
		t.Error("out-of-range query image accepted")
	}
	if _, err := l.AddSession(Session{QueryImage: -1, Judgments: map[int]Judgment{3: Relevant}}); err == nil {
		t.Error("negative query image accepted")
	}
	id, err := l.AddSession(Session{Judgments: map[int]Judgment{3: Relevant, 4: Irrelevant}})
	if err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}
	if id != 0 || l.NumSessions() != 1 {
		t.Errorf("id=%d sessions=%d", id, l.NumSessions())
	}
}

func TestSessionIDsSequential(t *testing.T) {
	l := NewLog(5)
	for i := 0; i < 3; i++ {
		id, err := l.AddSession(Session{Judgments: map[int]Judgment{i: Relevant}})
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Errorf("session %d got id %d", i, id)
		}
	}
	if l.Sessions()[2].ID != 2 {
		t.Error("stored session ID mismatch")
	}
}

func TestRelevanceVector(t *testing.T) {
	l := NewLog(6)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 1: Irrelevant})
	mustAdd(t, l, map[int]Judgment{0: Relevant, 2: Relevant})
	mustAdd(t, l, map[int]Judgment{1: Relevant, 0: Irrelevant})

	r0 := l.RelevanceVector(0)
	if r0.Dim != 3 {
		t.Fatalf("r0 dim = %d, want 3", r0.Dim)
	}
	if r0.At(0) != 1 || r0.At(1) != 1 || r0.At(2) != -1 {
		t.Errorf("r0 = %v", r0.ToDense())
	}
	r5 := l.RelevanceVector(5)
	if r5.NNZ() != 0 {
		t.Errorf("never-judged image has %d non-zeros", r5.NNZ())
	}
}

func TestRelevanceVectorsMatchSingle(t *testing.T) {
	l := NewLog(4)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 3: Irrelevant})
	mustAdd(t, l, map[int]Judgment{1: Relevant, 3: Relevant})
	all := l.RelevanceVectors()
	if len(all) != 4 {
		t.Fatalf("got %d vectors", len(all))
	}
	for img := 0; img < 4; img++ {
		if !all[img].Equal(l.RelevanceVector(img), 0) {
			t.Errorf("vector %d differs between bulk and single computation", img)
		}
	}
}

func TestRelevanceVectorOutOfRangePanics(t *testing.T) {
	l := NewLog(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.RelevanceVector(2)
}

func TestDenseRelevanceMatrix(t *testing.T) {
	l := NewLog(3)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 2: Irrelevant})
	m := l.DenseRelevanceMatrix()
	if m.Rows != 1 || m.Cols != 3 {
		t.Fatalf("matrix shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 1 || m.At(0, 1) != 0 || m.At(0, 2) != -1 {
		t.Errorf("matrix row = %v", m.Row(0))
	}
}

func TestStats(t *testing.T) {
	l := NewLog(10)
	mustAdd(t, l, map[int]Judgment{0: Relevant, 1: Irrelevant, 2: Irrelevant})
	mustAdd(t, l, map[int]Judgment{0: Relevant, 3: Relevant})
	st := l.Stats()
	if st.Sessions != 2 {
		t.Errorf("Sessions = %d", st.Sessions)
	}
	if st.TotalJudgments != 5 || st.PositiveJudgments != 3 || st.NegativeJudgments != 2 {
		t.Errorf("judgment counts = %+v", st)
	}
	if st.JudgedImages != 4 {
		t.Errorf("JudgedImages = %d, want 4", st.JudgedImages)
	}
	if st.MeanPerSession != 2.5 {
		t.Errorf("MeanPerSession = %v", st.MeanPerSession)
	}
	if st.CoverageFraction != 0.4 {
		t.Errorf("CoverageFraction = %v", st.CoverageFraction)
	}
}

func TestEmptyLogStats(t *testing.T) {
	st := NewLog(5).Stats()
	if st.Sessions != 0 || st.TotalJudgments != 0 || st.MeanPerSession != 0 {
		t.Errorf("empty log stats = %+v", st)
	}
}

func mustAdd(t *testing.T, l *Log, judgments map[int]Judgment) {
	t.Helper()
	if _, err := l.AddSession(Session{Judgments: judgments}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendRelevanceVectorsMatchesFullRebuild(t *testing.T) {
	log := NewLog(6)
	add := func(query int, judgments map[int]Judgment) {
		t.Helper()
		if _, err := log.AddSession(Session{QueryImage: query, Judgments: judgments}); err != nil {
			t.Fatal(err)
		}
	}
	add(0, map[int]Judgment{0: Relevant, 2: Irrelevant})
	cols := log.RelevanceVectors()

	// Grow the collection and the log in interleaved steps, extending the
	// cached columns each time, and compare against a fresh rebuild.
	add(1, map[int]Judgment{1: Relevant, 2: Relevant})
	cols = log.ExtendRelevanceVectors(cols, 1)
	log.GrowImages(2)
	cols = log.ExtendRelevanceVectors(cols, 2)
	add(7, map[int]Judgment{7: Relevant, 0: Irrelevant, 2: Irrelevant})
	add(3, map[int]Judgment{3: Relevant, 7: Irrelevant})
	cols = log.ExtendRelevanceVectors(cols, 2)

	want := log.RelevanceVectors()
	if len(cols) != len(want) {
		t.Fatalf("extended %d columns, rebuilt %d", len(cols), len(want))
	}
	for i := range want {
		if !cols[i].Equal(want[i], 0) {
			t.Errorf("column %d: extended %v, rebuilt %v", i, cols[i].ToDense(), want[i].ToDense())
		}
	}
}

func TestExtendRelevanceVectorsNoChangeReturnsPrev(t *testing.T) {
	log := NewLog(3)
	if _, err := log.AddSession(Session{Judgments: map[int]Judgment{1: Relevant}}); err != nil {
		t.Fatal(err)
	}
	cols := log.RelevanceVectors()
	if got := log.ExtendRelevanceVectors(cols, 1); &got[0] != &cols[0] {
		t.Error("unchanged log did not return the previous column view")
	}
}

func TestExtendRelevanceVectorsDoesNotMutatePrev(t *testing.T) {
	log := NewLog(3)
	if _, err := log.AddSession(Session{Judgments: map[int]Judgment{0: Relevant, 1: Irrelevant}}); err != nil {
		t.Fatal(err)
	}
	cols := log.RelevanceVectors()
	dense := make([]linalg.Vector, len(cols))
	for i, v := range cols {
		dense[i] = v.ToDense()
	}
	if _, err := log.AddSession(Session{Judgments: map[int]Judgment{0: Irrelevant, 2: Relevant}}); err != nil {
		t.Fatal(err)
	}
	_ = log.ExtendRelevanceVectors(cols, 1)
	for i, v := range cols {
		if v.Dim != 1 || !v.ToDense().Equal(dense[i], 0) {
			t.Errorf("column %d of the previous view changed: %v", i, v.ToDense())
		}
	}
}

func TestExtendRelevanceVectorsStalePanics(t *testing.T) {
	log := NewLog(2)
	defer func() {
		if recover() == nil {
			t.Fatal("stale column view did not panic")
		}
	}()
	log.ExtendRelevanceVectors(nil, 5)
}

func TestCloneIsolatesSessionList(t *testing.T) {
	log := NewLog(4)
	if _, err := log.AddSession(Session{Judgments: map[int]Judgment{0: Relevant}}); err != nil {
		t.Fatal(err)
	}
	snap := log.Clone()
	log.GrowImages(3)
	if _, err := log.AddSession(Session{Judgments: map[int]Judgment{5: Relevant}}); err != nil {
		t.Fatal(err)
	}
	if snap.NumImages() != 4 || snap.NumSessions() != 1 {
		t.Errorf("clone changed: %d images, %d sessions", snap.NumImages(), snap.NumSessions())
	}
	if log.NumImages() != 7 || log.NumSessions() != 2 {
		t.Errorf("original = %d images, %d sessions", log.NumImages(), log.NumSessions())
	}
}
