package feedbacklog

import (
	"fmt"
	"sort"

	"lrfcsvm/internal/linalg"
)

// SimulatorConfig controls simulated log collection.
//
// The paper collected 150 sessions per dataset from real users through a
// CBIR system with a relevance-feedback interface: each session shows the
// user the top-20 images by low-level visual similarity to a query and the
// user ticks the relevant ones. Real users are unavailable here, so the
// simulator reproduces that collection protocol against the category ground
// truth and injects label noise, which the paper stresses is present in real
// logs (see DESIGN.md §4).
type SimulatorConfig struct {
	// Sessions is the number of log sessions to collect (M). The paper uses
	// 150 per dataset.
	Sessions int
	// ReturnedPerSession is the number of images shown and judged per
	// session (20 in the paper).
	ReturnedPerSession int
	// NoiseRate is the probability that a single judgment is flipped,
	// modeling user subjectivity and mistakes. The paper does not quantify
	// its log noise; 0.05-0.10 is a realistic default.
	NoiseRate float64
	// ExplorationFraction is the fraction of each session's shown images
	// that are drawn from the user's target category at random rather than
	// from the visual top-k of the query. A log session in the paper is one
	// relevance-feedback round of a live CBIR system; by the time a user
	// reaches later rounds, the refined result list surfaces semantically
	// relevant images that are not visual neighbors of the original query,
	// and the user marks them relevant. This is precisely what gives the
	// log its value beyond the visual features; without it the log would
	// merely restate visual similarity. Default 0.35.
	ExplorationFraction float64
	// Seed makes collection deterministic.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c SimulatorConfig) Validate() error {
	switch {
	case c.Sessions <= 0:
		return fmt.Errorf("feedbacklog: sessions must be positive, got %d", c.Sessions)
	case c.ReturnedPerSession <= 0:
		return fmt.Errorf("feedbacklog: returned-per-session must be positive, got %d", c.ReturnedPerSession)
	case c.NoiseRate < 0 || c.NoiseRate >= 1:
		return fmt.Errorf("feedbacklog: noise rate must be in [0,1), got %v", c.NoiseRate)
	case c.ExplorationFraction < 0 || c.ExplorationFraction > 1:
		return fmt.Errorf("feedbacklog: exploration fraction must be in [0,1], got %v", c.ExplorationFraction)
	}
	return nil
}

// DefaultSimulatorConfig mirrors the paper's collection protocol: 150
// sessions of 20 judged images each, with 5% judgment noise and roughly a
// third of each session's images surfaced by feedback-round exploration.
func DefaultSimulatorConfig(seed uint64) SimulatorConfig {
	return SimulatorConfig{Sessions: 150, ReturnedPerSession: 20, NoiseRate: 0.05, ExplorationFraction: 0.35, Seed: seed}
}

// Simulate collects a feedback log over a collection described by its visual
// feature vectors and ground-truth category labels.
//
// Each session follows the paper's collection protocol: a query image is
// drawn uniformly at random and ReturnedPerSession images are "shown to the
// user". Most of the shown images are the visual top-k of the query (the
// system's initial result list); an ExplorationFraction of them are drawn at
// random from the query's category, modeling the semantically relevant
// images that later feedback rounds of a live CBIR session surface. Each
// shown image is judged relevant when it shares the query's category and
// irrelevant otherwise, and every judgment is flipped with probability
// NoiseRate.
func Simulate(visual []linalg.Vector, labels []int, cfg SimulatorConfig) (*Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(visual) == 0 || len(visual) != len(labels) {
		return nil, fmt.Errorf("feedbacklog: need matching features and labels, got %d and %d", len(visual), len(labels))
	}
	n := len(visual)
	returned := cfg.ReturnedPerSession
	if returned > n {
		returned = n
	}
	// Group image indices by category for exploration sampling.
	byCategory := make(map[int][]int)
	for i, c := range labels {
		byCategory[c] = append(byCategory[c], i)
	}
	rng := linalg.NewRNG(cfg.Seed)
	log := NewLog(n)
	for s := 0; s < cfg.Sessions; s++ {
		query := rng.Intn(n)
		shown := make(map[int]bool, returned)

		// Exploration part: images of the target category surfaced by later
		// feedback rounds.
		category := byCategory[labels[query]]
		nExplore := int(cfg.ExplorationFraction * float64(returned))
		for attempts := 0; len(shown) < nExplore && attempts < 10*nExplore; attempts++ {
			shown[category[rng.Intn(len(category))]] = true
		}
		// Initial-result part: the visual top-k of the query, skipping
		// images already surfaced by exploration.
		for _, img := range nearestByEuclidean(visual, query, returned) {
			if len(shown) >= returned {
				break
			}
			shown[img] = true
		}

		// Judge in deterministic (sorted) order so the noise stream is
		// reproducible for a given seed.
		shownList := make([]int, 0, len(shown))
		for img := range shown {
			shownList = append(shownList, img)
		}
		sort.Ints(shownList)
		judgments := make(map[int]Judgment, len(shownList))
		for _, img := range shownList {
			j := Irrelevant
			if labels[img] == labels[query] {
				j = Relevant
			}
			if rng.Bool(cfg.NoiseRate) {
				j = -j
			}
			judgments[img] = j
		}
		if _, err := log.AddSession(Session{
			QueryImage:     query,
			TargetCategory: labels[query],
			Judgments:      judgments,
		}); err != nil {
			return nil, err
		}
	}
	return log, nil
}

// nearestByEuclidean returns the indices of the k images closest to the
// query in visual feature space (the query itself is included, as it is in a
// real CBIR result list).
func nearestByEuclidean(visual []linalg.Vector, query, k int) []int {
	dists := make([]float64, len(visual))
	for i := range visual {
		dists[i] = visual[query].SquaredDistance(visual[i])
	}
	order := linalg.ArgsortAsc(dists)
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}
