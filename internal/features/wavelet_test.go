package features

import (
	"math"
	"testing"

	"lrfcsvm/internal/imaging"
	"lrfcsvm/internal/linalg"
)

func TestDaub4FilterProperties(t *testing.T) {
	// The scaling filter must sum to sqrt(2) and have unit energy.
	var sum, energy float64
	for _, h := range d4h {
		sum += h
		energy += h * h
	}
	if math.Abs(sum-math.Sqrt2) > 1e-12 {
		t.Errorf("scaling filter sum = %v, want sqrt(2)", sum)
	}
	if math.Abs(energy-1) > 1e-12 {
		t.Errorf("scaling filter energy = %v, want 1", energy)
	}
	// The wavelet filter must be orthogonal to the scaling filter and sum to 0.
	var gsum, cross float64
	for i := range d4g {
		gsum += d4g[i]
		cross += d4g[i] * d4h[i]
	}
	if math.Abs(gsum) > 1e-12 {
		t.Errorf("wavelet filter sum = %v, want 0", gsum)
	}
	if math.Abs(cross) > 1e-12 {
		t.Errorf("filters not orthogonal: %v", cross)
	}
}

func TestDWT1DEnergyConservation(t *testing.T) {
	rng := linalg.NewRNG(3)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.Range(-1, 1)
	}
	approx := make([]float64, 32)
	detail := make([]float64, 32)
	dwt1D(x, approx, detail)
	var inE, outE float64
	for _, v := range x {
		inE += v * v
	}
	for i := range approx {
		outE += approx[i]*approx[i] + detail[i]*detail[i]
	}
	if math.Abs(inE-outE)/inE > 1e-9 {
		t.Errorf("1D DWT does not conserve energy: %v -> %v", inE, outE)
	}
}

func TestDWT1DConstantSignal(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	approx := make([]float64, 4)
	detail := make([]float64, 4)
	dwt1D(x, approx, detail)
	for i := range detail {
		if math.Abs(detail[i]) > 1e-9 {
			t.Errorf("constant signal produced detail coefficient %v", detail[i])
		}
		if math.Abs(approx[i]-5*math.Sqrt2) > 1e-9 {
			t.Errorf("approx coefficient = %v, want %v", approx[i], 5*math.Sqrt2)
		}
	}
}

func TestDWTSubbandCount(t *testing.T) {
	gray := make([][]float64, 64)
	for y := range gray {
		gray[y] = make([]float64, 64)
		for x := range gray[y] {
			gray[y][x] = float64((x * y) % 255)
		}
	}
	bands := DWT(gray, 3)
	if len(bands) != 9 {
		t.Fatalf("3-level DWT of 64x64 produced %d subbands, want 9", len(bands))
	}
	// Finest level has 32x32 coefficients per band, coarsest 8x8.
	if len(bands[0].Coeffs) != 32*32 {
		t.Errorf("level-1 subband size = %d, want 1024", len(bands[0].Coeffs))
	}
	if len(bands[8].Coeffs) != 8*8 {
		t.Errorf("level-3 subband size = %d, want 64", len(bands[8].Coeffs))
	}
}

func TestDWTTinyImage(t *testing.T) {
	gray := [][]float64{{1, 2}, {3, 4}}
	bands := DWT(gray, 3)
	if len(bands) != 3 {
		t.Errorf("2x2 image should only support 1 level (3 bands), got %d", len(bands))
	}
	if got := DWT([][]float64{{1}}, 3); got != nil {
		t.Errorf("1x1 image should produce no bands, got %d", len(got))
	}
}

func TestSubbandEntropy(t *testing.T) {
	// All energy in one coefficient: entropy 0.
	if got := SubbandEntropy([]float64{0, 0, 3, 0}); math.Abs(got) > 1e-12 {
		t.Errorf("concentrated entropy = %v, want 0", got)
	}
	// Uniform energy across 4 coefficients: entropy ln 4.
	if got := SubbandEntropy([]float64{1, -1, 1, -1}); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %v, want ln 4", got)
	}
	// Zero energy: entropy 0.
	if got := SubbandEntropy([]float64{0, 0}); got != 0 {
		t.Errorf("zero-energy entropy = %v", got)
	}
}

func TestWaveletTextureDim(t *testing.T) {
	im := imaging.New(64, 64)
	wt := WaveletTexture(im)
	if len(wt) != WaveletDim {
		t.Fatalf("dim = %d, want %d", len(wt), WaveletDim)
	}
}

func TestWaveletTextureRange(t *testing.T) {
	im := imaging.New(64, 64)
	im.DrawChecker(imaging.Color{R: 1, G: 1, B: 1}, imaging.Color{R: 0, G: 0, B: 0}, 3)
	im.AddNoise(linalg.NewRNG(2), 15)
	wt := WaveletTexture(im)
	for i, v := range wt {
		if v < 0 || v > 1.0001 {
			t.Errorf("component %d = %v outside [0,1]", i, v)
		}
	}
}

func TestWaveletTextureDistinguishesFrequencies(t *testing.T) {
	smooth := imaging.New(64, 64)
	smooth.DrawGradient(imaging.Color{R: 0.2, G: 0.2, B: 0.2}, imaging.Color{R: 0.8, G: 0.8, B: 0.8}, 0)
	busy := imaging.New(64, 64)
	busy.Fill(128, 128, 128)
	busy.AddNoise(linalg.NewRNG(7), 60)
	ws := WaveletTexture(smooth)
	wb := WaveletTexture(busy)
	if ws.Distance(wb) < 0.2 {
		t.Errorf("texture descriptors of smooth vs noisy images too close: %v", ws.Distance(wb))
	}
}

func TestWaveletTextureConstantImage(t *testing.T) {
	im := imaging.New(64, 64)
	im.Fill(200, 200, 200)
	wt := WaveletTexture(im)
	for i, v := range wt {
		if math.Abs(v) > 1e-9 {
			t.Errorf("constant image texture[%d] = %v, want 0", i, v)
		}
	}
}
