package features

import (
	"math"

	"lrfcsvm/internal/imaging"
	"lrfcsvm/internal/linalg"
)

// WaveletDim is the dimensionality of the wavelet texture descriptor: the
// entropies of the 9 detail subbands (3 orientations x 3 decomposition
// levels) of a Daubechies-4 wavelet transform, as in the paper. The
// low-pass residual image is discarded.
const WaveletDim = 9

// WaveletLevels is the number of decomposition levels used by the texture
// descriptor.
const WaveletLevels = 3

// The Daubechies-4 filter coefficients are defined from sqrt(3); computing
// them in an init avoids sprinkling the literal derivation at every use site.
var (
	d4h [4]float64 // low-pass (scaling) filter
	d4g [4]float64 // high-pass (wavelet) filter
)

func init() {
	s3 := math.Sqrt(3)
	denom := 4 * math.Sqrt2
	d4h = [4]float64{(1 + s3) / denom, (3 + s3) / denom, (3 - s3) / denom, (1 - s3) / denom}
	// Quadrature mirror: g_k = (-1)^k h_{3-k}.
	d4g = [4]float64{d4h[3], -d4h[2], d4h[1], -d4h[0]}
}

// Subband identifies one detail subband of a 2D wavelet decomposition.
type Subband struct {
	Level       int // 1-based decomposition level
	Orientation int // 0=horizontal (LH), 1=vertical (HL), 2=diagonal (HH)
	Coeffs      []float64
}

// dwt1D performs one level of the Daubechies-4 transform on a signal of even
// length, producing approximation (low-pass) and detail (high-pass) halves.
// The signal is extended periodically at the boundary.
func dwt1D(x []float64, approx, detail []float64) {
	n := len(x)
	half := n / 2
	for i := 0; i < half; i++ {
		var a, d float64
		for k := 0; k < 4; k++ {
			idx := (2*i + k) % n
			a += d4h[k] * x[idx]
			d += d4g[k] * x[idx]
		}
		approx[i] = a
		detail[i] = d
	}
}

// dwt2D performs one level of the 2D separable DWT on plane (h x w, both
// even), returning the LL approximation and the LH, HL, HH detail planes.
func dwt2D(plane [][]float64) (ll, lh, hl, hh [][]float64) {
	h := len(plane)
	w := len(plane[0])
	// Row transform.
	rowsLo := newPlane(w/2, h)
	rowsHi := newPlane(w/2, h)
	for y := 0; y < h; y++ {
		dwt1D(plane[y][:w], rowsLo[y], rowsHi[y])
	}
	// Column transform of both halves.
	ll = newPlane(w/2, h/2)
	lh = newPlane(w/2, h/2)
	hl = newPlane(w/2, h/2)
	hh = newPlane(w/2, h/2)
	colIn := make([]float64, h)
	colLo := make([]float64, h/2)
	colHi := make([]float64, h/2)
	for x := 0; x < w/2; x++ {
		// Low-pass rows -> LL / LH.
		for y := 0; y < h; y++ {
			colIn[y] = rowsLo[y][x]
		}
		dwt1D(colIn, colLo, colHi)
		for y := 0; y < h/2; y++ {
			ll[y][x] = colLo[y]
			lh[y][x] = colHi[y]
		}
		// High-pass rows -> HL / HH.
		for y := 0; y < h; y++ {
			colIn[y] = rowsHi[y][x]
		}
		dwt1D(colIn, colLo, colHi)
		for y := 0; y < h/2; y++ {
			hl[y][x] = colLo[y]
			hh[y][x] = colHi[y]
		}
	}
	return ll, lh, hl, hh
}

// DWT computes a multi-level Daubechies-4 decomposition of a grayscale plane
// and returns the detail subbands from the finest to the coarsest level.
// Planes with odd dimensions are truncated to even sizes; decomposition
// stops early if a level would become smaller than 2x2.
func DWT(gray [][]float64, levels int) []Subband {
	h := len(gray)
	if h == 0 {
		return nil
	}
	w := len(gray[0])
	// Truncate to even dimensions.
	h -= h % 2
	w -= w % 2
	if h < 2 || w < 2 {
		return nil
	}
	current := newPlane(w, h)
	for y := 0; y < h; y++ {
		copy(current[y], gray[y][:w])
	}
	var bands []Subband
	for level := 1; level <= levels; level++ {
		ch := len(current)
		if ch < 2 {
			break
		}
		cw := len(current[0])
		if cw < 2 {
			break
		}
		ll, lh, hl, hh := dwt2D(current)
		bands = append(bands,
			Subband{Level: level, Orientation: 0, Coeffs: flattenPlane(lh)},
			Subband{Level: level, Orientation: 1, Coeffs: flattenPlane(hl)},
			Subband{Level: level, Orientation: 2, Coeffs: flattenPlane(hh)},
		)
		current = ll
		// Keep the LL dimensions even for the next level.
		if len(current)%2 == 1 {
			current = current[:len(current)-1]
		}
		if len(current) > 0 && len(current[0])%2 == 1 {
			for y := range current {
				current[y] = current[y][:len(current[y])-1]
			}
		}
	}
	return bands
}

func flattenPlane(p [][]float64) []float64 {
	if len(p) == 0 {
		return nil
	}
	out := make([]float64, 0, len(p)*len(p[0]))
	for _, row := range p {
		out = append(out, row...)
	}
	return out
}

// SubbandEntropy computes the Shannon entropy of the energy distribution of
// a subband's coefficients: p_i = c_i^2 / sum_j c_j^2. A zero-energy subband
// has zero entropy. Coefficients whose magnitude is below a small floor are
// treated as exactly zero so that floating-point residue from the transform
// of smooth regions does not masquerade as texture.
func SubbandEntropy(coeffs []float64) float64 {
	const coeffFloor = 1e-6
	energies := make([]float64, len(coeffs))
	for i, c := range coeffs {
		if c > -coeffFloor && c < coeffFloor {
			continue
		}
		energies[i] = c * c
	}
	return linalg.Entropy(energies)
}

// WaveletTexture computes the 9-dimensional wavelet texture descriptor of
// the image: the entropy of each of the 9 detail subbands of a 3-level
// Daubechies-4 decomposition of the grayscale image, ordered
// (LH1,HL1,HH1, LH2,HL2,HH2, LH3,HL3,HH3). Entropies are normalized by the
// log of the subband size so that all components lie in [0,1] regardless of
// image resolution. Missing levels (image too small) contribute zeros.
func WaveletTexture(im *imaging.Image) linalg.Vector {
	gray := im.Gray()
	bands := DWT(gray, WaveletLevels)
	out := make(linalg.Vector, WaveletDim)
	for _, b := range bands {
		idx := (b.Level-1)*3 + b.Orientation
		if idx < 0 || idx >= WaveletDim {
			continue
		}
		h := SubbandEntropy(b.Coeffs)
		if n := len(b.Coeffs); n > 1 {
			h /= math.Log(float64(n))
		}
		out[idx] = h
	}
	return out
}
