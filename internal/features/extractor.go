package features

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"lrfcsvm/internal/imaging"
	"lrfcsvm/internal/linalg"
)

// Dim is the dimensionality of the composite visual descriptor: 9 color
// moments + 18 edge-direction bins + 9 wavelet entropies = 36, exactly the
// feature layout described in Section 6.2 of the paper.
const Dim = ColorMomentDim + EdgeHistDim + WaveletDim

// Extractor turns images into 36-dimensional visual descriptors.
// The zero value is ready to use.
type Extractor struct {
	// Canny configures the edge detector used for the edge-direction
	// histogram. A zero value selects DefaultCannyOptions.
	Canny CannyOptions
}

// Extract computes the composite descriptor of a single image.
func (e Extractor) Extract(im *imaging.Image) linalg.Vector {
	opts := e.Canny
	if opts.GaussianSigma <= 0 && opts.HighThreshold <= 0 {
		opts = DefaultCannyOptions()
	}
	cm := ColorMoments(im)
	eh := EdgeDirectionHistogramOpts(im, opts)
	wt := WaveletTexture(im)
	return linalg.Concat(cm, eh, wt)
}

// ImageSource yields images by index; both dataset.Generator and the
// retrieval feature store satisfy it.
type ImageSource interface {
	NumImages() int
	Render(i int) *imaging.Image
}

// ExtractAll extracts descriptors for every image of a source, using up to
// workers goroutines (workers <= 0 selects GOMAXPROCS). The result is
// indexed by image index.
func (e Extractor) ExtractAll(src ImageSource, workers int) []linalg.Vector {
	n := src.NumImages()
	out := make([]linalg.Vector, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = e.Extract(src.Render(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Normalizer standardizes descriptors to zero mean and unit variance per
// component, using statistics estimated from a reference collection. This is
// the usual preprocessing before Euclidean ranking and RBF kernels so that
// no single feature family dominates the distance.
type Normalizer struct {
	Mean linalg.Vector
	Std  linalg.Vector
}

// FitNormalizer estimates per-component mean and standard deviation from the
// given descriptors. Components with (numerically) zero variance get a unit
// standard deviation so normalization never divides by zero.
func FitNormalizer(descriptors []linalg.Vector) (*Normalizer, error) {
	if len(descriptors) == 0 {
		return nil, fmt.Errorf("features: cannot fit a normalizer on an empty collection")
	}
	dim := len(descriptors[0])
	mean := make(linalg.Vector, dim)
	std := make(linalg.Vector, dim)
	for _, d := range descriptors {
		if len(d) != dim {
			return nil, fmt.Errorf("features: inconsistent descriptor dimensions %d and %d", dim, len(d))
		}
		for j, x := range d {
			mean[j] += x
		}
	}
	n := float64(len(descriptors))
	for j := range mean {
		mean[j] /= n
	}
	for _, d := range descriptors {
		for j, x := range d {
			diff := x - mean[j]
			std[j] += diff * diff
		}
	}
	for j := range std {
		std[j] = std[j] / n
		if std[j] < 1e-12 {
			std[j] = 1
		} else {
			std[j] = math.Sqrt(std[j])
		}
	}
	return &Normalizer{Mean: mean, Std: std}, nil
}

// Apply returns the standardized copy of d.
func (n *Normalizer) Apply(d linalg.Vector) linalg.Vector {
	out := make(linalg.Vector, len(d))
	for j, x := range d {
		out[j] = (x - n.Mean[j]) / n.Std[j]
	}
	return out
}

// ApplyAll standardizes every descriptor, returning a new slice.
func (n *Normalizer) ApplyAll(ds []linalg.Vector) []linalg.Vector {
	out := make([]linalg.Vector, len(ds))
	for i, d := range ds {
		out[i] = n.Apply(d)
	}
	return out
}
