package features

import "math"

// EdgePoint is one pixel retained by the Canny edge detector, annotated with
// its gradient direction in radians in (-pi, pi].
type EdgePoint struct {
	X, Y      int
	Direction float64
	Magnitude float64
}

// CannyOptions configures the edge detector.
type CannyOptions struct {
	// GaussianSigma is the standard deviation of the smoothing kernel.
	GaussianSigma float64
	// LowThreshold and HighThreshold are the hysteresis thresholds applied
	// to the gradient magnitude. If HighThreshold is zero, both thresholds
	// are derived from the magnitude distribution (high = 2x mean,
	// low = 0.5x high), which adapts to the image contrast.
	LowThreshold, HighThreshold float64
}

// DefaultCannyOptions returns the detector configuration used by the
// edge-direction histogram descriptor.
func DefaultCannyOptions() CannyOptions {
	return CannyOptions{GaussianSigma: 1.0}
}

// Canny runs the Canny edge detector on a grayscale plane (values in
// [0,255]) and returns the retained edge points with their gradient
// directions. The implementation follows the classical pipeline: Gaussian
// smoothing, Sobel gradients, non-maximum suppression and hysteresis
// thresholding.
func Canny(gray [][]float64, opts CannyOptions) []EdgePoint {
	h := len(gray)
	if h == 0 {
		return nil
	}
	w := len(gray[0])
	if w == 0 {
		return nil
	}
	if opts.GaussianSigma <= 0 {
		opts.GaussianSigma = 1.0
	}

	smoothed := gaussianBlur(gray, opts.GaussianSigma)
	mag, dir := sobel(smoothed)

	// Derive hysteresis thresholds from the magnitude distribution when the
	// caller did not fix them: fractions of the maximum gradient magnitude,
	// which adapts to image contrast and keeps strongly textured images
	// (where nearly every pixel carries gradient) from suppressing all edges.
	low, high := opts.LowThreshold, opts.HighThreshold
	if high <= 0 {
		var maxMag float64
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if mag[y][x] > maxMag {
					maxMag = mag[y][x]
				}
			}
		}
		high = 0.25 * maxMag
		low = 0.1 * maxMag
	}
	// Intensities are in [0,255]; anything below this floor is floating-point
	// residue from the blur, not a real gradient.
	const magnitudeFloor = 1e-6
	if high < magnitudeFloor {
		// A (numerically) flat image has no gradient anywhere and thus no edges.
		return nil
	}

	suppressed := nonMaxSuppress(mag, dir)
	strong, weak := classify(suppressed, low, high)
	final := hysteresis(strong, weak)

	var points []EdgePoint
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if final[y][x] {
				points = append(points, EdgePoint{X: x, Y: y, Direction: dir[y][x], Magnitude: mag[y][x]})
			}
		}
	}
	return points
}

// gaussianBlur convolves the plane with a separable Gaussian kernel.
func gaussianBlur(in [][]float64, sigma float64) [][]float64 {
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	var sum float64
	for i := -radius; i <= radius; i++ {
		//cbirlint:ignore exppurity one-time blur-kernel construction at extraction time, never on the ranking path
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		kernel[i+radius] = v
		sum += v
	}
	for i := range kernel {
		kernel[i] /= sum
	}

	h, w := len(in), len(in[0])
	tmp := newPlane(w, h)
	out := newPlane(w, h)
	// Horizontal pass with edge clamping.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			for k := -radius; k <= radius; k++ {
				xx := clampInt(x+k, 0, w-1)
				acc += in[y][xx] * kernel[k+radius]
			}
			tmp[y][x] = acc
		}
	}
	// Vertical pass.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			for k := -radius; k <= radius; k++ {
				yy := clampInt(y+k, 0, h-1)
				acc += tmp[yy][x] * kernel[k+radius]
			}
			out[y][x] = acc
		}
	}
	return out
}

// sobel computes gradient magnitude and direction with 3x3 Sobel operators.
func sobel(in [][]float64) (mag, dir [][]float64) {
	h, w := len(in), len(in[0])
	mag = newPlane(w, h)
	dir = newPlane(w, h)
	at := func(x, y int) float64 {
		return in[clampInt(y, 0, h-1)][clampInt(x, 0, w-1)]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx := -at(x-1, y-1) - 2*at(x-1, y) - at(x-1, y+1) +
				at(x+1, y-1) + 2*at(x+1, y) + at(x+1, y+1)
			gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
				at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			mag[y][x] = math.Hypot(gx, gy)
			dir[y][x] = math.Atan2(gy, gx)
		}
	}
	return mag, dir
}

// nonMaxSuppress keeps only pixels that are local maxima of the gradient
// magnitude along the gradient direction.
func nonMaxSuppress(mag, dir [][]float64) [][]float64 {
	h, w := len(mag), len(mag[0])
	out := newPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m := mag[y][x]
			if m == 0 {
				continue
			}
			// Quantize the direction to one of four neighbor axes.
			angle := dir[y][x]
			if angle < 0 {
				angle += math.Pi
			}
			var dx, dy int
			switch {
			case angle < math.Pi/8 || angle >= 7*math.Pi/8:
				dx, dy = 1, 0
			case angle < 3*math.Pi/8:
				dx, dy = 1, 1
			case angle < 5*math.Pi/8:
				dx, dy = 0, 1
			default:
				dx, dy = -1, 1
			}
			n1 := magAt(mag, x+dx, y+dy)
			n2 := magAt(mag, x-dx, y-dy)
			if m >= n1 && m >= n2 {
				out[y][x] = m
			}
		}
	}
	return out
}

func magAt(mag [][]float64, x, y int) float64 {
	if y < 0 || y >= len(mag) || x < 0 || x >= len(mag[0]) {
		return 0
	}
	return mag[y][x]
}

func classify(mag [][]float64, low, high float64) (strong, weak [][]bool) {
	h, w := len(mag), len(mag[0])
	strong = newBoolPlane(w, h)
	weak = newBoolPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if mag[y][x] <= 0 {
				continue
			}
			switch {
			case mag[y][x] >= high:
				strong[y][x] = true
			case mag[y][x] >= low:
				weak[y][x] = true
			}
		}
	}
	return strong, weak
}

// hysteresis promotes weak edge pixels that are 8-connected to a strong
// pixel, using a BFS flood from the strong seeds.
func hysteresis(strong, weak [][]bool) [][]bool {
	h, w := len(strong), len(strong[0])
	out := newBoolPlane(w, h)
	var queue [][2]int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if strong[y][x] {
				out[y][x] = true
				queue = append(queue, [2]int{x, y})
			}
		}
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				x, y := p[0]+dx, p[1]+dy
				if x < 0 || x >= w || y < 0 || y >= h {
					continue
				}
				if weak[y][x] && !out[y][x] {
					out[y][x] = true
					queue = append(queue, [2]int{x, y})
				}
			}
		}
	}
	return out
}

func newPlane(w, h int) [][]float64 {
	out := make([][]float64, h)
	buf := make([]float64, w*h)
	for y := range out {
		out[y] = buf[y*w : (y+1)*w]
	}
	return out
}

func newBoolPlane(w, h int) [][]bool {
	out := make([][]bool, h)
	buf := make([]bool, w*h)
	for y := range out {
		out[y] = buf[y*w : (y+1)*w]
	}
	return out
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
