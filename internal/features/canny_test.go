package features

import (
	"math"
	"testing"

	"lrfcsvm/internal/imaging"
	"lrfcsvm/internal/linalg"
)

// grayFrom builds a grayscale plane from a function of (x,y).
func grayFrom(w, h int, f func(x, y int) float64) [][]float64 {
	out := make([][]float64, h)
	for y := range out {
		out[y] = make([]float64, w)
		for x := range out[y] {
			out[y][x] = f(x, y)
		}
	}
	return out
}

func TestCannyEmptyInput(t *testing.T) {
	if got := Canny(nil, DefaultCannyOptions()); got != nil {
		t.Errorf("Canny(nil) = %v", got)
	}
	if got := Canny([][]float64{}, DefaultCannyOptions()); got != nil {
		t.Errorf("Canny(empty) = %v", got)
	}
}

func TestCannyFlatImageNoEdges(t *testing.T) {
	gray := grayFrom(32, 32, func(x, y int) float64 { return 100 })
	points := Canny(gray, DefaultCannyOptions())
	if len(points) != 0 {
		t.Errorf("flat image produced %d edge points", len(points))
	}
}

func TestCannyVerticalStepEdge(t *testing.T) {
	// A vertical step edge: dark left half, bright right half.
	gray := grayFrom(32, 32, func(x, y int) float64 {
		if x < 16 {
			return 0
		}
		return 255
	})
	points := Canny(gray, DefaultCannyOptions())
	if len(points) < 16 {
		t.Fatalf("vertical step produced only %d edge points", len(points))
	}
	// Edge pixels should cluster near x=16 and the gradient should point
	// horizontally (direction near 0 or pi).
	for _, p := range points {
		if p.X < 13 || p.X > 19 {
			t.Errorf("edge point at x=%d, far from the step at 16", p.X)
		}
		d := math.Abs(math.Mod(p.Direction, math.Pi))
		if d > 0.3 && math.Pi-d > 0.3 {
			t.Errorf("edge direction %v not horizontal", p.Direction)
		}
	}
}

func TestCannyHorizontalStepEdge(t *testing.T) {
	gray := grayFrom(32, 32, func(x, y int) float64 {
		if y < 16 {
			return 0
		}
		return 255
	})
	points := Canny(gray, DefaultCannyOptions())
	if len(points) < 16 {
		t.Fatalf("horizontal step produced only %d edge points", len(points))
	}
	for _, p := range points {
		if p.Y < 13 || p.Y > 19 {
			t.Errorf("edge point at y=%d, far from the step at 16", p.Y)
		}
		// Gradient should point vertically: |direction| near pi/2.
		if math.Abs(math.Abs(p.Direction)-math.Pi/2) > 0.3 {
			t.Errorf("edge direction %v not vertical", p.Direction)
		}
	}
}

func TestCannyExplicitThresholds(t *testing.T) {
	gray := grayFrom(16, 16, func(x, y int) float64 {
		if x < 8 {
			return 0
		}
		return 255
	})
	// An absurdly high threshold removes all edges.
	points := Canny(gray, CannyOptions{GaussianSigma: 1, LowThreshold: 1e7, HighThreshold: 1e8})
	if len(points) != 0 {
		t.Errorf("expected no edges with huge thresholds, got %d", len(points))
	}
}

func TestCannyMagnitudePositive(t *testing.T) {
	im := imaging.New(32, 32)
	im.DrawChecker(imaging.Color{R: 1, G: 1, B: 1}, imaging.Color{R: 0, G: 0, B: 0}, 4)
	im.AddNoise(linalg.NewRNG(1), 5)
	points := Canny(im.Gray(), DefaultCannyOptions())
	if len(points) == 0 {
		t.Fatal("checkerboard produced no edges")
	}
	for _, p := range points {
		if p.Magnitude <= 0 {
			t.Fatalf("edge point with non-positive magnitude: %+v", p)
		}
	}
}

func TestGaussianBlurPreservesMean(t *testing.T) {
	rng := linalg.NewRNG(5)
	gray := grayFrom(16, 16, func(x, y int) float64 { return rng.Range(0, 255) })
	blurred := gaussianBlur(gray, 1.2)
	var sumIn, sumOut float64
	for y := range gray {
		for x := range gray[y] {
			sumIn += gray[y][x]
			sumOut += blurred[y][x]
		}
	}
	// Edge clamping changes the mean slightly; allow 5%.
	if math.Abs(sumIn-sumOut)/sumIn > 0.05 {
		t.Errorf("blur changed total mass too much: %v -> %v", sumIn, sumOut)
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	gray := grayFrom(16, 16, func(x, y int) float64 {
		if (x+y)%2 == 0 {
			return 0
		}
		return 255
	})
	blurred := gaussianBlur(gray, 1.5)
	// High-frequency alternation should be strongly attenuated.
	maxDiff := 0.0
	for y := 1; y < 15; y++ {
		for x := 1; x < 15; x++ {
			d := math.Abs(blurred[y][x] - blurred[y][x+1])
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 60 {
		t.Errorf("blur left large pixel-to-pixel differences: %v", maxDiff)
	}
}

func TestSobelOnRamp(t *testing.T) {
	// A linear ramp in x has a constant horizontal gradient.
	gray := grayFrom(16, 16, func(x, y int) float64 { return float64(x) * 10 })
	mag, dir := sobel(gray)
	if mag[8][8] <= 0 {
		t.Fatal("ramp gradient magnitude is zero")
	}
	if math.Abs(dir[8][8]) > 1e-9 {
		t.Errorf("ramp gradient direction = %v, want 0", dir[8][8])
	}
}
