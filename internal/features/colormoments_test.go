package features

import (
	"math"
	"testing"

	"lrfcsvm/internal/imaging"
)

func TestColorMomentsDim(t *testing.T) {
	im := imaging.New(16, 16)
	cm := ColorMoments(im)
	if len(cm) != ColorMomentDim {
		t.Fatalf("dim = %d, want %d", len(cm), ColorMomentDim)
	}
}

func TestColorMomentsConstantImage(t *testing.T) {
	im := imaging.New(16, 16)
	im.Fill(255, 0, 0) // pure red: H=0, S=1, V=1
	cm := ColorMoments(im)
	// Means: H/360 = 0, S = 1, V = 1. Variances and skewnesses = 0.
	if math.Abs(cm[0]) > 1e-9 || math.Abs(cm[1]) > 1e-9 || math.Abs(cm[2]) > 1e-9 {
		t.Errorf("hue moments of constant red image = %v", cm[:3])
	}
	if math.Abs(cm[3]-1) > 1e-9 || math.Abs(cm[4]) > 1e-9 {
		t.Errorf("saturation moments = %v", cm[3:6])
	}
	if math.Abs(cm[6]-1) > 1e-9 || math.Abs(cm[7]) > 1e-9 {
		t.Errorf("value moments = %v", cm[6:9])
	}
}

func TestColorMomentsDistinguishHues(t *testing.T) {
	red := imaging.New(16, 16)
	red.Fill(255, 0, 0)
	blue := imaging.New(16, 16)
	blue.Fill(0, 0, 255)
	cmRed := ColorMoments(red)
	cmBlue := ColorMoments(blue)
	if math.Abs(cmRed[0]-cmBlue[0]) < 0.1 {
		t.Errorf("hue means of red (%v) and blue (%v) are not separated", cmRed[0], cmBlue[0])
	}
}

func TestColorMomentsVarianceSensitivity(t *testing.T) {
	flat := imaging.New(16, 16)
	flat.Fill(128, 128, 128)
	varied := imaging.New(16, 16)
	varied.DrawChecker(imaging.Color{R: 1, G: 1, B: 1}, imaging.Color{R: 0, G: 0, B: 0}, 2)
	cmFlat := ColorMoments(flat)
	cmVar := ColorMoments(varied)
	// Value-channel variance (index 7) should be much larger for the checkerboard.
	if cmVar[7] <= cmFlat[7] {
		t.Errorf("checkerboard V variance %v not greater than flat %v", cmVar[7], cmFlat[7])
	}
}

func TestColorMomentsFinite(t *testing.T) {
	im := imaging.New(8, 8)
	im.DrawGradient(imaging.Color{R: 0.1, G: 0.9, B: 0.3}, imaging.Color{R: 0.8, G: 0.1, B: 0.9}, 1.1)
	cm := ColorMoments(im)
	if cm.HasNaN() {
		t.Errorf("color moments contain NaN/Inf: %v", cm)
	}
}
