package features

import (
	"math"
	"testing"

	"lrfcsvm/internal/dataset"
	"lrfcsvm/internal/imaging"
	"lrfcsvm/internal/linalg"
)

func TestExtractDim(t *testing.T) {
	im := imaging.New(32, 32)
	im.DrawChecker(imaging.Color{R: 1, G: 0, B: 0}, imaging.Color{R: 0, G: 0, B: 1}, 4)
	var e Extractor
	d := e.Extract(im)
	if len(d) != Dim {
		t.Fatalf("descriptor dim = %d, want %d", len(d), Dim)
	}
	if Dim != 36 {
		t.Fatalf("composite dim = %d, the paper uses 36", Dim)
	}
	if d.HasNaN() {
		t.Error("descriptor contains NaN")
	}
}

func TestExtractAllMatchesExtract(t *testing.T) {
	gen, err := dataset.NewGenerator(dataset.Spec{Categories: 3, ImagesPerCategory: 2, Width: 32, Height: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var e Extractor
	all := e.ExtractAll(gen, 3)
	if len(all) != gen.NumImages() {
		t.Fatalf("ExtractAll returned %d descriptors", len(all))
	}
	for i := range all {
		single := e.Extract(gen.Render(i))
		if !all[i].Equal(single, 1e-12) {
			t.Errorf("descriptor %d differs between ExtractAll and Extract", i)
		}
	}
}

func TestExtractAllWorkerCountIndependence(t *testing.T) {
	gen, err := dataset.NewGenerator(dataset.Spec{Categories: 2, ImagesPerCategory: 3, Width: 32, Height: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var e Extractor
	seq := e.ExtractAll(gen, 1)
	par := e.ExtractAll(gen, 4)
	for i := range seq {
		if !seq[i].Equal(par[i], 1e-12) {
			t.Errorf("descriptor %d depends on worker count", i)
		}
	}
}

func TestCategorySeparationInFeatureSpace(t *testing.T) {
	// The synthetic dataset must exhibit the property the paper's
	// evaluation relies on: same-category images are closer on average in
	// feature space than different-category images.
	gen, err := dataset.NewGenerator(dataset.Spec{Categories: 6, ImagesPerCategory: 8, Width: 48, Height: 48, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var e Extractor
	descs := e.ExtractAll(gen, 0)
	norm, err := FitNormalizer(descs)
	if err != nil {
		t.Fatal(err)
	}
	descs = norm.ApplyAll(descs)
	labels := gen.Labels()
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < len(descs); i++ {
		for j := i + 1; j < len(descs); j++ {
			d := descs[i].Distance(descs[j])
			if labels[i] == labels[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra >= inter {
		t.Errorf("intra-category distance %v >= inter-category distance %v: no visual structure", intra, inter)
	}
	// But the separation must not be trivial, otherwise relevance feedback
	// would have nothing to improve (the "semantic gap").
	if inter/intra > 5 {
		t.Errorf("categories separate too cleanly (ratio %v); semantic gap unrealistically small", inter/intra)
	}
}

func TestFitNormalizerErrors(t *testing.T) {
	if _, err := FitNormalizer(nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := FitNormalizer([]linalg.Vector{{1, 2}, {1}}); err == nil {
		t.Error("expected error on ragged input")
	}
}

func TestNormalizerStandardizes(t *testing.T) {
	descs := []linalg.Vector{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	n, err := FitNormalizer(descs)
	if err != nil {
		t.Fatal(err)
	}
	out := n.ApplyAll(descs)
	for j := 0; j < 2; j++ {
		col := make(linalg.Vector, len(out))
		for i := range out {
			col[i] = out[i][j]
		}
		if math.Abs(col.Mean()) > 1e-9 {
			t.Errorf("column %d mean = %v, want 0", j, col.Mean())
		}
		if math.Abs(col.Std()-1) > 1e-9 {
			t.Errorf("column %d std = %v, want 1", j, col.Std())
		}
	}
}

func TestNormalizerConstantComponent(t *testing.T) {
	descs := []linalg.Vector{{1, 7}, {2, 7}, {3, 7}}
	n, err := FitNormalizer(descs)
	if err != nil {
		t.Fatal(err)
	}
	out := n.Apply(linalg.Vector{2, 7})
	if math.IsNaN(out[1]) || math.IsInf(out[1], 0) {
		t.Errorf("constant component normalized to %v", out[1])
	}
	if out[1] != 0 {
		t.Errorf("constant component should map to 0, got %v", out[1])
	}
}
