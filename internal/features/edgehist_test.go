package features

import (
	"math"
	"testing"

	"lrfcsvm/internal/imaging"
)

func TestEdgeHistDim(t *testing.T) {
	im := imaging.New(32, 32)
	h := EdgeDirectionHistogram(im)
	if len(h) != EdgeHistDim {
		t.Fatalf("dim = %d, want %d", len(h), EdgeHistDim)
	}
}

func TestEdgeHistFlatImageIsZero(t *testing.T) {
	im := imaging.New(32, 32)
	im.Fill(128, 128, 128)
	h := EdgeDirectionHistogram(im)
	if h.Sum() != 0 {
		t.Errorf("flat image histogram sums to %v, want 0", h.Sum())
	}
}

func TestEdgeHistNormalized(t *testing.T) {
	im := imaging.New(32, 32)
	im.DrawChecker(imaging.Color{R: 1, G: 1, B: 1}, imaging.Color{R: 0, G: 0, B: 0}, 4)
	h := EdgeDirectionHistogram(im)
	if math.Abs(h.Sum()-1) > 1e-9 {
		t.Errorf("histogram sums to %v, want 1", h.Sum())
	}
	for i, v := range h {
		if v < 0 {
			t.Errorf("bin %d negative: %v", i, v)
		}
	}
}

func TestEdgeHistVerticalEdgesDominateHorizontalBins(t *testing.T) {
	// Vertical stripes create vertical edges whose gradient is horizontal
	// (pointing in the 0 or 180 degree bins).
	im := imaging.New(48, 48)
	im.DrawStripes(imaging.Color{R: 1, G: 1, B: 1}, imaging.Color{R: 0, G: 0, B: 0}, 12, 0)
	h := EdgeDirectionHistogram(im)
	if h.Sum() == 0 {
		t.Fatal("no edges detected on stripes")
	}
	// Gradient direction ~0 falls in bin 0, ~180 degrees in bin 9.
	horizontalMass := h[0] + h[17] + h[8] + h[9]
	if horizontalMass < 0.6 {
		t.Errorf("horizontal-gradient bins hold only %v of the mass: %v", horizontalMass, h)
	}
}

func TestEdgeHistOrientationSensitivity(t *testing.T) {
	vertical := imaging.New(48, 48)
	vertical.DrawStripes(imaging.Color{R: 1, G: 1, B: 1}, imaging.Color{R: 0, G: 0, B: 0}, 12, 0)
	horizontal := imaging.New(48, 48)
	horizontal.DrawStripes(imaging.Color{R: 1, G: 1, B: 1}, imaging.Color{R: 0, G: 0, B: 0}, 12, math.Pi/2)
	hv := EdgeDirectionHistogram(vertical)
	hh := EdgeDirectionHistogram(horizontal)
	if hv.Distance(hh) < 0.3 {
		t.Errorf("histograms of orthogonal stripes too similar: %v", hv.Distance(hh))
	}
}

func TestEdgeHistDeterministic(t *testing.T) {
	im := imaging.New(32, 32)
	im.DrawChecker(imaging.Color{R: 1, G: 0, B: 0}, imaging.Color{R: 0, G: 0, B: 1}, 5)
	a := EdgeDirectionHistogram(im)
	b := EdgeDirectionHistogram(im)
	if !a.Equal(b, 0) {
		t.Error("edge histogram is not deterministic")
	}
}
