// Package features implements the three low-level visual descriptors the
// paper uses to represent images (Section 6.2):
//
//   - a 9-dimensional HSV color-moment feature (mean, variance and skewness
//     of each of the H, S and V channels),
//   - an 18-dimensional edge-direction histogram computed from Canny edge
//     maps and quantized into 20-degree bins,
//   - a 9-dimensional wavelet texture feature: the entropies of the nine
//     detail subbands of a 3-level Daubechies-4 wavelet decomposition.
//
// The composite 36-dimensional descriptor is produced by Extractor, and
// Normalizer standardizes descriptors across a collection so that Euclidean
// distances and RBF kernels treat the three feature families comparably.
package features

import (
	"lrfcsvm/internal/imaging"
	"lrfcsvm/internal/linalg"
)

// ColorMomentDim is the dimensionality of the color-moment descriptor:
// 3 moments (mean, variance, skewness) x 3 HSV channels.
const ColorMomentDim = 9

// ColorMoments computes the 9-dimensional HSV color-moment feature of the
// image: for each of the H, S and V channels it records the mean, the
// variance and the skewness of the channel values. The hue channel is scaled
// to [0,1] so all three channels contribute on comparable scales.
func ColorMoments(im *imaging.Image) linalg.Vector {
	h, s, v := im.HSV()
	out := make(linalg.Vector, 0, ColorMomentDim)
	for _, plane := range [][][]float64{h, s, v} {
		flat := flatten(plane)
		out = append(out, flat.Mean(), flat.Variance(), flat.Skewness())
	}
	// Hue values live in [0,360); rescale its three moments to keep the
	// descriptor components on comparable scales before normalization.
	out[0] /= 360
	out[1] /= 360 * 360
	// skewness is already standardized.
	return out
}

func flatten(plane [][]float64) linalg.Vector {
	if len(plane) == 0 {
		return nil
	}
	out := make(linalg.Vector, 0, len(plane)*len(plane[0]))
	for _, row := range plane {
		out = append(out, row...)
	}
	return out
}
