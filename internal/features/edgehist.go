package features

import (
	"math"

	"lrfcsvm/internal/imaging"
	"lrfcsvm/internal/linalg"
)

// EdgeHistDim is the dimensionality of the edge-direction histogram:
// 18 bins of 20 degrees each, covering [0,360) gradient directions.
const EdgeHistDim = 18

// EdgeDirectionHistogram computes the 18-bin edge-direction histogram of the
// image, as in the paper: the image is converted to grayscale, Canny edges
// are extracted, and the gradient direction of every retained edge pixel is
// quantized into 20-degree bins. The histogram is normalized by the number
// of edge pixels so image size does not affect the descriptor; an image with
// no detected edges yields the zero vector.
func EdgeDirectionHistogram(im *imaging.Image) linalg.Vector {
	return EdgeDirectionHistogramOpts(im, DefaultCannyOptions())
}

// EdgeDirectionHistogramOpts is EdgeDirectionHistogram with explicit Canny
// detector options.
func EdgeDirectionHistogramOpts(im *imaging.Image, opts CannyOptions) linalg.Vector {
	gray := im.Gray()
	points := Canny(gray, opts)
	hist := make(linalg.Vector, EdgeHistDim)
	if len(points) == 0 {
		return hist
	}
	binWidth := 2 * math.Pi / EdgeHistDim
	for _, p := range points {
		// Map direction from (-pi,pi] to [0,2pi).
		d := p.Direction
		if d < 0 {
			d += 2 * math.Pi
		}
		bin := int(d / binWidth)
		if bin >= EdgeHistDim {
			bin = EdgeHistDim - 1
		}
		hist[bin]++
	}
	hist.ScaleInPlace(1 / float64(len(points)))
	return hist
}
