// Package lrfcsvm is a from-scratch Go reproduction of
//
//	S. C. H. Hoi, M. R. Lyu, R. Jin.
//	"Integrating User Feedback Log into Relevance Feedback by Coupled SVM
//	 for Content-Based Image Retrieval", ICDE 2005.
//
// The repository implements the paper's contribution — the coupled support
// vector machine and the LRF-CSVM log-based relevance-feedback algorithm —
// together with every substrate it depends on: a synthetic COREL-like image
// collection, the 36-dimensional visual descriptors (HSV color moments,
// Canny edge-direction histogram, Daubechies-4 wavelet entropies), an SMO
// SVM solver with per-sample costs, the user-feedback log substrate and its
// simulator, the comparison schemes of the paper's evaluation (Euclidean,
// RF-SVM, LRF-2SVMs), the evaluation harness that regenerates Tables 1-2 and
// Figures 3-4, an interactive retrieval engine, binary persistence, and a
// JSON HTTP server.
//
// # Sharded query pipeline
//
// Collection scoring runs over fixed-size shards (kernel.ShardedSet): each
// shard is a self-contained slab of flat row-major storage with precomputed
// row norms, scored independently by workers pulling shard ranges from a
// queue. The final ranking streams through bounded per-shard top-K heaps
// (core.TopKRanker / core.TopK, O(n log K)) merged under the strict
// descending-score, ascending-index order, so results are bit-identical to
// a full stable sort for every shard size and worker count. Per-query score
// lanes and selectors come from a pooled scratch arena on the collection
// batch: a steady-state query with a recycled result buffer
// (RankTopAppend) allocates one object per ranking pass. The K limit is
// threaded end to end — Engine.InitialQuery/InitialQueryBatch,
// Session.Refine, and the HTTP query/refine endpoints (with a configurable
// default and hard ceiling) all return bounded lists. The full-scores path
// (Scheme.Rank) remains for the evaluation harness, which needs every
// score.
//
// # Dynamic collections
//
// The engine serves a living collection: retrieval.Engine.AddImages (and
// POST /api/images on the HTTP server) ingests new visual descriptors while
// queries and feedback rounds keep running. Ingestion is copy-on-write —
// only the tail shard grows (full shards are shared between epochs), row
// norms and the collection-level kernel estimate grow incrementally, and
// the grown index is published as a new immutable epoch, so in-flight
// rankings finish against their own consistent snapshot and are never
// blocked or torn. Shard layout depends only on the shard size, never on
// ingestion batching. Committed feedback rounds extend the per-image log
// relevance columns incrementally the same way. A grown engine can be
// persisted as one self-contained snapshot file (storage.SaveSnapshot /
// retrieval.Engine.Snapshot) and reloaded bit-identically; cmd/cbirserver
// does this automatically on graceful shutdown via its -snapshot flag.
//
// The HTTP server manages feedback-session lifecycles for sustained
// traffic: sessions idle longer than the TTL (default 30 minutes) are
// evicted by a background sweeper, the live-session table is capped
// (default 16384, least-recently-used evicted first), and Server.Close
// shuts the session layer down gracefully. Sessions with an asynchronous
// refinement round still in flight are never evicted mid-round (the
// training result would be silently lost); they become evictable as soon
// as the round completes.
//
// # Durability
//
// The accumulated feedback log is the system's most valuable state — the
// paper's premise is that it grows over time and makes retrieval smarter —
// so it must survive crashes, not just graceful shutdowns. storage.Journal
// is a write-ahead log of engine mutations: every committed session and
// every ingested image batch is appended as one CRC32-checksummed record
// (retrieval.Options.Journal) before the in-memory state mutates, under
// the engine's mutation lock, so journal order matches log order exactly
// and a failed append fails the request (a record that could not be made
// durable is rolled back out of the file). Startup replays snapshot +
// journal (storage.OpenJournal) and reconstructs the pre-crash in-memory
// engine bit-identically: records carry sequence numbers and the snapshot
// records the sequence it covers (storage.SaveSnapshotAt), so replay skips
// what the snapshot already contains — a crash between snapshot install
// and journal compaction cannot double-apply a record. A torn trailing
// record — which an interrupted append can only leave at the end of the
// file — is tolerated and truncated, while a record whose bytes are all
// present but wrong, or a journal compacted past its snapshot, surfaces as
// storage.ErrCorrupt rather than silently discarding acknowledged records.
// storage.Snapshotter periodically folds the journal into the snapshot
// (serialized passes: capture state + covered sequence under the engine
// lock, atomic SaveSnapshotAt, then drop the covered journal prefix),
// bounding replay time by the tail written since the last snapshot.
//
// The fsync policy (storage.FsyncPolicy) trades commit latency against the
// loss window of an OS crash or power failure: FsyncAlways syncs every
// record, FsyncInterval (default) flushes on a background timer,
// FsyncOff leaves flushing to the OS. An application crash — panic, OOM
// kill, kill -9 — loses nothing under any policy, because records are
// written straight to the file, never buffered in the process; this is
// pinned by a crash-recovery suite that SIGKILLs a journaling helper
// process mid-append. cmd/cbirserver wires the whole loop via -journal,
// -fsync, -snapshot-interval and -journal-max-bytes, and exposes the
// durability counters (journaled records, replay statistics, snapshot
// compactions) in GET /api/status.
//
// # Feedback training
//
// The per-round training cost is carried by an SMO solver tuned for
// repeated retraining: pair selection is fused into the gradient-update
// loop, solver scratch is pooled across runs, warm starts can carry the
// previous solution and its exact gradient (svm.Config.WarmAlpha /
// WarmGrad / FinalGrad), and an opt-in shrinking heuristic
// (svm.Config.Shrinking) deactivates bound-pinned variables, re-verifying
// the KKT criterion over the full problem before convergence is declared.
// The coupled trainer (core.TrainCoupled) reads unlabeled decision values
// from its shared kernel caches and trains the modalities of each
// alternation step concurrently (core.CoupledConfig.Workers) — the default
// configuration stays bit-identical to sequential cold-start training,
// pinned by the golden MAP regression and the solver property suite in
// internal/svm.
//
// Refinement rounds can run asynchronously: Session.RefineAsync (HTTP:
// POST /api/refine?async=1) submits the round to a bounded engine-wide
// training pool (retrieval.Options.TrainWorkers, cbirserver
// -train-workers) and returns a round token at once; rounds are polled
// via Session.RefineStatus (GET /api/refine/status) or read through
// Session.LatestRefined, which only ever moves forward — queries keep
// being served from the previous ranking until the new one lands, the
// same publish-then-swap discipline the collection epochs use. An
// engine-wide cap (Options.MaxPendingRefines) rejects submission bursts
// instead of queueing unbounded training work.
//
// # Static analysis and enforced invariants
//
// The contracts the suites above can only spot-check are enforced
// mechanically by a repo-specific analyzer suite (internal/analysis,
// driven by cmd/cbirlint and run as a required CI job): determinism
// forbids wall-clock reads, unseeded randomness and order-dependent
// map iteration in the bit-identical packages (internal/kernel,
// internal/core, internal/svm, internal/feedbacklog); ctxflow forbids
// fabricated context.Background()/TODO() and dropped ctx parameters on
// the serving path (internal/retrieval, internal/server,
// internal/core); atomicpublish requires that any struct field ever
// touched through sync/atomic is never also read or written plainly in
// its package; exppurity confines math.Exp and friends to
// internal/kernel, where the pinned ≤2-ulp exponential lives; and
// lockjournal requires journal appends to happen inside the engine
// mutation mutex, before the state mutation they cover. Violations are
// suppressed only by an audited //cbirlint:ignore <analyzer> <reason>
// directive, and stale or malformed directives are themselves
// violations. Run it locally with "make lint" or
// "go run ./cmd/cbirlint ./...".
//
// Start with the README for an architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured results. The public entry points live under
// internal/core (learning schemes), internal/eval (experiments),
// internal/retrieval (interactive engine) and internal/server (HTTP API);
// runnable programs live under cmd/ and examples/.
package lrfcsvm
