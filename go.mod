module lrfcsvm

go 1.24
