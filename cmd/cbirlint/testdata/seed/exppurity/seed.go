// Package seed carries one known exppurity violation for the CI
// self-test.
package seed

import "math"

// Score forks the pinned exponential outside internal/kernel.
func Score(x float64) float64 {
	return math.Exp(-x)
}
