// Package seed carries one known lockjournal violation for the CI
// self-test.
package seed

import "sync"

// Sink mirrors the engine's journal sink.
type Sink interface {
	AppendSession(int) error
}

// Engine holds a journal sink behind a mutation mutex it fails to take.
type Engine struct {
	mu      sync.Mutex
	Journal Sink
}

// Commit appends to the journal without holding the mutex.
func (e *Engine) Commit(x int) error {
	return e.Journal.AppendSession(x)
}
