// Package seed carries one known atomicpublish violation for the CI
// self-test.
package seed

import "sync/atomic"

type state struct {
	epoch int64
}

// Publish moves the epoch atomically.
func (s *state) Publish() {
	atomic.AddInt64(&s.epoch, 1)
}

// Torn reads the atomically-published field without sync/atomic.
func (s *state) Torn() int64 {
	return s.epoch
}
