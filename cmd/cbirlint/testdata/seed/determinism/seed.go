// Package seed carries one known determinism violation; the CI self-test
// asserts cbirlint still exits non-zero on it, so a silently broken
// analyzer cannot rot into a green badge.
package seed

import "time"

// Stamp reads the wall clock in a bit-identical package.
func Stamp() int64 {
	return time.Now().UnixNano()
}
