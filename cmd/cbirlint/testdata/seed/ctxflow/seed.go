// Package seed carries one known ctxflow violation for the CI self-test.
package seed

import "context"

// Placeholder leaves a TODO context on the serving path.
func Placeholder() context.Context {
	return context.TODO()
}
