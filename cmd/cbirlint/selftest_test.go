package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lrfcsvm/internal/analysis"
)

// The CI self-test: every analyzer in the suite has a checked-in seed
// package under testdata/seed/<name> containing exactly one known
// violation, and the real cbirlint binary must exit non-zero naming that
// analyzer when pointed at it. An analyzer that silently stops firing —
// a scope predicate typo, a type-check regression in the loader, a
// pattern the stdlib's AST shapes drifted away from — fails this test
// instead of rotting into a permanently green lint job.

// seedScopes loads each seed under an import path its analyzer covers.
var seedScopes = map[string]string{
	"determinism":   "lrfcsvm/internal/kernel",
	"ctxflow":       "lrfcsvm/internal/retrieval",
	"atomicpublish": "lrfcsvm/internal/retrieval",
	"exppurity":     "lrfcsvm/internal/core",
	"lockjournal":   "lrfcsvm/internal/retrieval",
}

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func buildLint(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cbirlint-selftest-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "cbirlint")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = ""
			os.RemoveAll(dir)
			return
		}
		_ = out
	})
	if buildErr != nil {
		t.Fatalf("building cbirlint: %v", buildErr)
	}
	return binPath
}

func TestEveryAnalyzerHasASeed(t *testing.T) {
	for _, a := range analysis.All() {
		if _, ok := seedScopes[a.Name]; !ok {
			t.Errorf("analyzer %s has no seed scope; add one here and a package under testdata/seed/%s", a.Name, a.Name)
			continue
		}
		if _, err := os.Stat(filepath.Join("testdata", "seed", a.Name)); err != nil {
			t.Errorf("analyzer %s has no seed package: %v", a.Name, err)
		}
	}
	for name := range seedScopes {
		if _, err := analysis.ByName(name); err != nil {
			t.Errorf("seed %s names no registered analyzer", name)
		}
	}
}

func TestSelfTestSeededViolations(t *testing.T) {
	bin := buildLint(t)
	for _, a := range analysis.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			scope := seedScopes[a.Name]
			if scope == "" {
				t.Fatalf("no seed scope for %s", a.Name)
			}
			cmd := exec.Command(bin, "-run", a.Name, "-pkgpath", scope, "./testdata/seed/"+a.Name)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("cbirlint exited 0 on the seeded %s violation:\n%s", a.Name, out)
			}
			exit, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("running cbirlint: %v\n%s", err, out)
			}
			if exit.ExitCode() != 1 {
				t.Fatalf("cbirlint exit code %d on seeded %s violation, want 1 (violations found):\n%s", exit.ExitCode(), a.Name, out)
			}
			if !strings.Contains(string(out), a.Name+":") {
				t.Fatalf("cbirlint output does not name %s:\n%s", a.Name, out)
			}
		})
	}
}

// TestCleanPackageExitsZero pins the other half of the exit-code
// contract on a package with no violations.
func TestCleanPackageExitsZero(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "./.").CombinedOutput()
	if err != nil {
		t.Fatalf("cbirlint on its own (clean) package: %v\n%s", err, out)
	}
}
