// Command cbirlint runs the repo's invariant analyzer suite (see
// internal/analysis) over go package patterns and reports violations of
// the contracts earlier PRs established: bit-identical determinism in the
// numeric packages, context propagation on the serving path, atomic
// publish discipline, the single pinned exponential, and journal-order ==
// log-order durability.
//
// Usage:
//
//	cbirlint [flags] [packages]
//
// With no packages, ./... is analyzed. Exit status is 1 when violations
// are found, 2 on a loading or usage error, 0 on a clean tree. CI runs it
// as a required job; `make lint` runs the identical set locally.
//
// Flags:
//
//	-list           print the analyzers, their contracts, and exit
//	-run a,b        run only the named analyzers
//	-pkgpath path   analyze a single package as if its import path were
//	                path (testdata fixtures and the CI self-test use this
//	                to opt scratch packages into path-scoped analyzers)
//
// Deliberate, audited exceptions are annotated in place:
//
//	//cbirlint:ignore <analyzer> <reason>
//
// on the offending line or the line above it. Malformed or stale ignore
// directives are themselves violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lrfcsvm/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "print the analyzers and their contracts, then exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	pkgPath := flag.String("pkgpath", "", "analyze a single package under this import path (for scratch/fixture packages)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n%14s contract: %s\n", a.Name, a.Doc, "", a.Contract)
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, err := analysis.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "cbirlint:", err)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	diags, err := analysis.Run(analysis.RunConfig{
		Patterns:  patterns,
		PkgPath:   *pkgPath,
		Analyzers: analyzers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbirlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cbirlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
