// Command loggen simulates the collection of user-feedback log sessions
// over a feature store written by featextract, following the collection
// protocol of the paper (Section 6.3): per session a random query, a result
// list of 20 images, per-image relevance ticks, plus judgment noise. The log
// is written as a binary log store consumable by cbirserver.
//
// Example:
//
//	loggen -features features20.bin -sessions 150 -out log20.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"lrfcsvm/internal/feedbacklog"
	"lrfcsvm/internal/storage"
)

func main() {
	var (
		featuresPath = flag.String("features", "features.bin", "feature store written by featextract")
		sessions     = flag.Int("sessions", 150, "number of log sessions to simulate")
		returned     = flag.Int("returned", 20, "images judged per session")
		noise        = flag.Float64("noise", 0.05, "probability of flipping a judgment")
		exploration  = flag.Float64("exploration", 0.35, "fraction of each session drawn from the target category")
		seed         = flag.Uint64("seed", 43, "simulation seed")
		out          = flag.String("out", "log.bin", "output log store")
	)
	flag.Parse()

	visual, labels, err := storage.LoadFeatures(*featuresPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
	log, err := feedbacklog.Simulate(visual, labels, feedbacklog.SimulatorConfig{
		Sessions:            *sessions,
		ReturnedPerSession:  *returned,
		NoiseRate:           *noise,
		ExplorationFraction: *exploration,
		Seed:                *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
	if err := storage.SaveLog(*out, log); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
	st := log.Stats()
	fmt.Printf("simulated %d sessions (%d judgments, %.0f%% of images covered) -> %s\n",
		st.Sessions, st.TotalJudgments, 100*st.CoverageFraction, *out)
}
