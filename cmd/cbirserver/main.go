// Command cbirserver serves the content-based image retrieval engine over a
// JSON HTTP API: initial queries, relevance-feedback sessions with any of
// the library's schemes (including the paper's LRF-CSVM), committing
// feedback rounds into the long-term log, and live image ingestion.
//
// The collection can come from a feature/log store pair or from an engine
// snapshot. With -snapshot the server loads the snapshot when it exists
// (falling back to -features/-log for the initial import) and persists the
// grown collection and log back to it on graceful shutdown (SIGINT/SIGTERM),
// closing the persistence loop of the live collection.
//
// Example:
//
//	featextract -out features.bin
//	loggen -features features.bin -out log.bin
//	cbirserver -features features.bin -log log.bin -snapshot engine.snap -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lrfcsvm/internal/feedbacklog"
	"lrfcsvm/internal/linalg"
	"lrfcsvm/internal/retrieval"
	"lrfcsvm/internal/server"
	"lrfcsvm/internal/storage"
)

func main() {
	var (
		featuresPath = flag.String("features", "features.bin", "feature store written by featextract")
		logPath      = flag.String("log", "", "optional log store written by loggen")
		snapshotPath = flag.String("snapshot", "", "optional engine snapshot: loaded when present, written on graceful shutdown")
		addr         = flag.String("addr", ":8080", "listen address")
		sessionTTL   = flag.Duration("session-ttl", server.DefaultSessionTTL, "idle feedback sessions are evicted after this long")
		maxSessions  = flag.Int("max-sessions", server.DefaultMaxSessions, "cap on live feedback sessions (LRU eviction beyond it)")
		shardSize    = flag.Int("shard-size", 0, "collection shard capacity of the scoring path (0 = library default; rankings are identical for every value)")
		defaultK     = flag.Int("default-k", server.DefaultResultK, "result-list length when a request omits k")
		maxK         = flag.Int("max-k", server.DefaultMaxK, "hard cap on the result-list length of any request")
		trainWorkers = flag.Int("train-workers", 0, "feedback-training concurrency: size of the async-refine worker pool and of each round's coupled modality training (0 = library default)")
	)
	flag.Parse()

	visual, fblog, err := loadCollection(*snapshotPath, *featuresPath, *logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbirserver:", err)
		os.Exit(1)
	}
	engine, err := retrieval.NewEngine(visual, fblog, retrieval.Options{ShardSize: *shardSize, TrainWorkers: *trainWorkers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbirserver:", err)
		os.Exit(1)
	}
	srv := server.NewWithConfig(engine, server.Config{
		SessionTTL:  *sessionTTL,
		MaxSessions: *maxSessions,
		DefaultK:    *defaultK,
		MaxK:        *maxK,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := <-stop
		log.Printf("cbirserver: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Stop accepting requests and drain in-flight ones, then shut the
		// session layer down before the final snapshot.
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("cbirserver: shutdown: %v", err)
		}
		srv.Close()
		if *snapshotPath != "" {
			snapVisual, snapLog := engine.Snapshot()
			if err := storage.SaveSnapshot(*snapshotPath, snapVisual, snapLog); err != nil {
				log.Printf("cbirserver: save snapshot: %v", err)
			} else {
				log.Printf("cbirserver: snapshot of %d images (%d log sessions) written to %s",
					len(snapVisual), snapLog.NumSessions(), *snapshotPath)
			}
		}
	}()

	log.Printf("cbirserver: serving %d images in %d shards (%d log sessions) on %s", engine.NumImages(), engine.NumShards(), engine.NumLogSessions(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cbirserver: %v", err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// shutdown goroutine to finish draining and writing the snapshot.
	<-shutdownDone
}

// loadCollection resolves the startup collection: an existing snapshot wins,
// otherwise the feature store (plus optional log store) is imported.
func loadCollection(snapshotPath, featuresPath, logPath string) ([]linalg.Vector, *feedbacklog.Log, error) {
	if snapshotPath != "" {
		visual, fblog, err := storage.LoadSnapshot(snapshotPath)
		if err == nil {
			log.Printf("cbirserver: resuming from snapshot %s", snapshotPath)
			return visual, fblog, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, nil, err
		}
	}
	visual, _, err := storage.LoadFeatures(featuresPath)
	if err != nil {
		return nil, nil, err
	}
	var fblog *feedbacklog.Log
	if logPath != "" {
		if fblog, err = storage.LoadLog(logPath); err != nil {
			return nil, nil, err
		}
	}
	return visual, fblog, nil
}
