// Command cbirserver serves the content-based image retrieval engine over a
// JSON HTTP API: initial queries, relevance-feedback sessions with any of
// the library's schemes (including the paper's LRF-CSVM), committing
// feedback rounds into the long-term log, and live image ingestion.
//
// The collection can come from a feature/log store pair or from an engine
// snapshot. With -snapshot the server loads the snapshot when it exists
// (falling back to -features/-log for the initial import) and persists the
// grown collection and log back to it on graceful shutdown (SIGINT/SIGTERM).
//
// With -journal the server is durable against crashes, not just graceful
// shutdowns: every committed feedback session and every ingested image
// batch is appended to a write-ahead journal (fsync policy selectable with
// -fsync) before it takes effect, startup replays snapshot + journal tail
// to reconstruct the exact pre-crash state, and a background snapshotter
// folds the journal into the snapshot every -snapshot-interval (or sooner
// when it reaches -journal-max-bytes), bounding replay time.
//
// The serving path is deadline-aware: -query-timeout and -train-timeout
// bound each request (an expired or disconnected request stops its
// collection scan and SVM training mid-way), and -max-inflight-query /
// -max-inflight-train / -max-inflight-ingest cap concurrent work per
// request class — excess requests queue up to -queue-wait and are then
// shed with 503 + Retry-After (a negative -queue-wait sheds immediately
// without queueing). The listener itself runs with fixed connection
// hygiene timeouts (10s read-header, 2m read, 2m idle). See the server
// package documentation for the full resilience semantics.
//
// The server exports its operational state twice: human-readable under
// GET /api/status, and as Prometheus text exposition under GET /metrics —
// per-endpoint request latency histograms and status-code counters plus
// the admission, engine, index and journal gauges, all reading the same
// counters as /api/status. /metrics stays scrapable during shutdown.
//
// With -ann, initial queries prune the collection through an IVF-style
// centroid index (-ann-clusters cells, -ann-nprobe probed per query) and
// re-rank the candidates exactly; images ingested since the last index
// build are always scanned exactly, and the index is rebuilt in the
// background as the collection grows. Relevance-feedback refinement always
// scans exhaustively. Index state appears under "ann" in GET /api/status.
//
// With -quantized, initial queries not covered by the ANN index run an
// approximate scan over an int8 quantized copy of the collection and
// exactly re-score the top k*oversample survivors, so returned scores are
// bit-identical to the exhaustive scan's. -kernel-backend selects the
// vectorized compute backend of the scoring kernels (also via the
// KERNEL_BACKEND environment variable); the active backend appears as
// "kernel_backend" in GET /api/status.
//
// Example:
//
//	featextract -out features.bin
//	loggen -features features.bin -out log.bin
//	cbirserver -features features.bin -log log.bin \
//	    -snapshot engine.snap -journal engine.wal -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lrfcsvm/internal/feedbacklog"
	"lrfcsvm/internal/kernel"
	"lrfcsvm/internal/linalg"
	"lrfcsvm/internal/retrieval"
	"lrfcsvm/internal/server"
	"lrfcsvm/internal/storage"
)

func main() {
	var (
		featuresPath = flag.String("features", "features.bin", "feature store written by featextract")
		logPath      = flag.String("log", "", "optional log store written by loggen")
		snapshotPath = flag.String("snapshot", "", "optional engine snapshot: loaded when present, written by the snapshotter and on graceful shutdown")
		journalPath  = flag.String("journal", "", "optional write-ahead feedback journal: commits and ingestions are durable against crashes, startup replays the tail")
		fsyncPolicy  = flag.String("fsync", "interval", "journal flush policy: always (no loss window), interval (bounded window, default) or off")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "how often the snapshotter folds the journal into the snapshot (needs -snapshot and -journal)")
		journalMax   = flag.Int64("journal-max-bytes", storage.DefaultMaxJournalBytes, "journal size that forces a snapshot before the interval elapses")
		addr         = flag.String("addr", ":8080", "listen address")
		sessionTTL   = flag.Duration("session-ttl", server.DefaultSessionTTL, "idle feedback sessions are evicted after this long")
		maxSessions  = flag.Int("max-sessions", server.DefaultMaxSessions, "cap on live feedback sessions (LRU eviction beyond it)")
		shardSize    = flag.Int("shard-size", 0, "collection shard capacity of the scoring path (0 = library default; rankings are identical for every value)")
		defaultK     = flag.Int("default-k", server.DefaultResultK, "result-list length when a request omits k")
		maxK         = flag.Int("max-k", server.DefaultMaxK, "hard cap on the result-list length of any request")
		trainWorkers = flag.Int("train-workers", 0, "feedback-training concurrency: size of the async-refine worker pool and of each round's coupled modality training (0 = library default)")
		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "deadline of each query request; an expired one stops scanning mid-collection and returns 504 (0 = no deadline)")
		trainTimeout = flag.Duration("train-timeout", 30*time.Second, "deadline of each synchronous refine request and of every async refine round (0 = no deadline)")
		maxQuery     = flag.Int("max-inflight-query", 0, "concurrent query requests admitted; beyond it requests queue briefly and then shed with 503 (0 = unlimited)")
		maxTrain     = flag.Int("max-inflight-train", 0, "concurrent refine requests admitted (0 = unlimited)")
		maxIngest    = flag.Int("max-inflight-ingest", 0, "concurrent ingest/commit requests admitted (0 = unlimited)")
		queueWait    = flag.Duration("queue-wait", server.DefaultQueueWait, "how long an over-limit request waits for an admission slot before it is shed with 503; negative sheds immediately without queueing")
		annEnable    = flag.Bool("ann", false, "prune initial queries with an IVF-style centroid index (exact re-rank; refinement and small collections stay exhaustive)")
		annClusters  = flag.Int("ann-clusters", 0, "k-means cells of the candidate index (0 = sqrt of the collection size)")
		annNProbe    = flag.Int("ann-nprobe", 0, "nearest cells scanned per pruned query; higher = better recall, slower (0 = clusters/4)")
		annMinColl   = flag.Int("ann-min-collection", retrieval.DefaultANNMinCollection, "collection size below which no index is built and queries scan exhaustively")
		kernBackend  = flag.String("kernel-backend", "", "compute backend of the scoring kernels: auto, scalar, unrolled or avx2 (empty = keep default; also settable via KERNEL_BACKEND)")
		quantEnable  = flag.Bool("quantized", false, "serve initial queries the ANN index does not cover from an int8 approximate scan with exact re-scoring")
		quantOver    = flag.Int("quantized-oversample", 0, "survivor multiplier of the quantized scan: top k*oversample approximate candidates are re-scored exactly (0 = library default)")
	)
	flag.Parse()

	if *kernBackend != "" {
		if err := kernel.SetBackend(*kernBackend); err != nil {
			log.Fatalf("-kernel-backend: %v", err)
		}
	}

	visual, fblog, coveredSeq, err := loadCollection(*snapshotPath, *featuresPath, *logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbirserver:", err)
		os.Exit(1)
	}

	// Journal replay: recover everything committed or ingested since the
	// state loaded above was persisted. The snapshot records the journal
	// sequence it covers, so replay never double-applies a record even if
	// the previous process died between snapshot install and compaction.
	var journal *storage.Journal
	var replay storage.ReplayStats
	if *journalPath != "" {
		fsync, err := storage.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cbirserver:", err)
			os.Exit(1)
		}
		if fblog == nil {
			fblog = feedbacklog.NewLog(len(visual))
		}
		journal, visual, replay, err = storage.OpenJournal(*journalPath, visual, fblog, storage.JournalOptions{Fsync: fsync, SnapshotSeq: coveredSeq})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cbirserver: journal:", err)
			os.Exit(1)
		}
		if replay.Records > 0 || replay.Skipped > 0 || replay.TornTailBytes > 0 {
			log.Printf("cbirserver: journal %s replayed %d records (%d sessions, %d images), %d already covered by the snapshot, %d torn bytes truncated",
				*journalPath, replay.Records, replay.Sessions, replay.Images, replay.Skipped, replay.TornTailBytes)
		}
	}

	opts := retrieval.Options{
		ShardSize:     *shardSize,
		TrainWorkers:  *trainWorkers,
		RefineTimeout: *trainTimeout,
		ANN: retrieval.ANNOptions{
			Enable:        *annEnable,
			Clusters:      *annClusters,
			NProbe:        *annNProbe,
			MinCollection: *annMinColl,
		},
		Quantized: retrieval.QuantizedOptions{
			Enable:     *quantEnable,
			Oversample: *quantOver,
		},
	}
	if journal != nil {
		opts.Journal = journal
	}
	engine, err := retrieval.NewEngine(visual, fblog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbirserver:", err)
		os.Exit(1)
	}

	// Snapshot compaction keeps journal replay bounded; it needs both a
	// snapshot to write and a journal to truncate.
	var snapshotter *storage.Snapshotter
	if journal != nil && *snapshotPath != "" {
		snapshotter, err = storage.NewSnapshotter(journal, engine.SnapshotWith, storage.SnapshotterConfig{
			SnapshotPath:    *snapshotPath,
			Interval:        *snapInterval,
			MaxJournalBytes: *journalMax,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cbirserver:", err)
			os.Exit(1)
		}
	} else if journal != nil {
		log.Printf("cbirserver: -journal without -snapshot: the journal is never compacted and replay time grows with it")
	}

	cfg := server.Config{
		SessionTTL:        *sessionTTL,
		MaxSessions:       *maxSessions,
		DefaultK:          *defaultK,
		MaxK:              *maxK,
		QueryTimeout:      *queryTimeout,
		TrainTimeout:      *trainTimeout,
		MaxInflightQuery:  *maxQuery,
		MaxInflightTrain:  *maxTrain,
		MaxInflightIngest: *maxIngest,
		QueueWait:         *queueWait,
	}
	if journal != nil {
		cfg.Durability = durabilityStatus(journal, snapshotter, replay)
	}
	srv := server.NewWithConfig(engine, cfg)
	// Protect the listener itself, not just the handlers: a client that
	// trickles its headers or body holds a connection, and an idle keep-alive
	// connection should not pin a file descriptor forever. The header and
	// idle timeouts are fixed, deliberately generous defaults; per-request
	// work is bounded by -query-timeout/-train-timeout instead of
	// WriteTimeout, which would also kill legitimate long responses.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := <-stop
		log.Printf("cbirserver: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Stop accepting requests and drain in-flight ones, then shut the
		// session layer down before the final snapshot.
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("cbirserver: shutdown: %v", err)
		}
		srv.Close()
		// Cancel the engine's base context: queued and running async refine
		// rounds stop promptly instead of training into the final snapshot.
		engine.Close()
		switch {
		case snapshotter != nil:
			// Final pass: snapshot the end state and compact the journal to
			// empty, so the next start replays nothing.
			snapshotter.Close()
			if err := snapshotter.SnapshotNow(); err != nil {
				log.Printf("cbirserver: final snapshot: %v", err)
			} else {
				log.Printf("cbirserver: snapshot of %d images (%d log sessions) written to %s",
					engine.NumImages(), engine.NumLogSessions(), *snapshotPath)
			}
		case *snapshotPath != "":
			snapVisual, snapLog := engine.Snapshot()
			if err := storage.SaveSnapshot(*snapshotPath, snapVisual, snapLog); err != nil {
				log.Printf("cbirserver: save snapshot: %v", err)
			} else {
				log.Printf("cbirserver: snapshot of %d images (%d log sessions) written to %s",
					len(snapVisual), snapLog.NumSessions(), *snapshotPath)
			}
		}
		if journal != nil {
			if err := journal.Close(); err != nil {
				log.Printf("cbirserver: close journal: %v", err)
			}
		}
	}()

	log.Printf("cbirserver: serving %d images in %d shards (%d log sessions) on %s", engine.NumImages(), engine.NumShards(), engine.NumLogSessions(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cbirserver: %v", err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// shutdown goroutine to finish draining and writing the snapshot.
	<-shutdownDone
}

// durabilityStatus adapts the journal, snapshotter and replay counters into
// the /api/status durability section.
func durabilityStatus(journal *storage.Journal, snapshotter *storage.Snapshotter, replay storage.ReplayStats) func() server.DurabilityStatus {
	return func() server.DurabilityStatus {
		js := journal.Stats()
		d := server.DurabilityStatus{
			Journal:           true,
			FsyncPolicy:       journal.Fsync().String(),
			JournaledRecords:  js.Records,
			JournaledSessions: js.Sessions,
			JournaledImages:   js.Images,
			JournalBytes:      js.Bytes,
			ReplayedSessions:  replay.Sessions,
			ReplayedImages:    replay.Images,
			ReplayTornBytes:   replay.TornTailBytes,
		}
		if snapshotter != nil {
			ss := snapshotter.Stats()
			d.Snapshots = ss.Snapshots
			d.LastSnapshotUnix = ss.LastSnapshotUnix
		}
		return d
	}
}

// loadCollection resolves the startup collection: an existing snapshot wins,
// otherwise the feature store (plus optional log store) is imported. The
// third return is the journal sequence the loaded state covers (0 for a
// fresh import or a snapshot written without a journal).
func loadCollection(snapshotPath, featuresPath, logPath string) ([]linalg.Vector, *feedbacklog.Log, uint64, error) {
	if snapshotPath != "" {
		visual, fblog, seq, err := storage.LoadSnapshotAt(snapshotPath)
		if err == nil {
			log.Printf("cbirserver: resuming from snapshot %s", snapshotPath)
			return visual, fblog, seq, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, nil, 0, err
		}
	}
	visual, _, err := storage.LoadFeatures(featuresPath)
	if err != nil {
		return nil, nil, 0, err
	}
	var fblog *feedbacklog.Log
	if logPath != "" {
		if fblog, err = storage.LoadLog(logPath); err != nil {
			return nil, nil, 0, err
		}
	}
	return visual, fblog, 0, nil
}
