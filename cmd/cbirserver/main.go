// Command cbirserver serves the content-based image retrieval engine over a
// JSON HTTP API: initial queries, relevance-feedback sessions with any of
// the library's schemes (including the paper's LRF-CSVM), and committing
// feedback rounds into the long-term log.
//
// Example:
//
//	featextract -out features.bin
//	loggen -features features.bin -out log.bin
//	cbirserver -features features.bin -log log.bin -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"lrfcsvm/internal/feedbacklog"
	"lrfcsvm/internal/retrieval"
	"lrfcsvm/internal/server"
	"lrfcsvm/internal/storage"
)

func main() {
	var (
		featuresPath = flag.String("features", "features.bin", "feature store written by featextract")
		logPath      = flag.String("log", "", "optional log store written by loggen")
		addr         = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	visual, _, err := storage.LoadFeatures(*featuresPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbirserver:", err)
		os.Exit(1)
	}
	var fblog *feedbacklog.Log
	if *logPath != "" {
		fblog, err = storage.LoadLog(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cbirserver:", err)
			os.Exit(1)
		}
	}
	engine, err := retrieval.NewEngine(visual, fblog, retrieval.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbirserver:", err)
		os.Exit(1)
	}
	srv := server.New(engine)
	log.Printf("cbirserver: serving %d images (%d log sessions) on %s", engine.NumImages(), engine.NumLogSessions(), *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("cbirserver: %v", err)
	}
}
