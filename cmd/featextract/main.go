// Command featextract generates a synthetic dataset, extracts the paper's
// 36-dimensional visual descriptors (HSV color moments, Canny edge-direction
// histogram, Daubechies-4 wavelet entropies), standardizes them, and writes
// a binary feature store consumable by loggen and cbirserver.
//
// Example:
//
//	featextract -categories 20 -per-category 100 -out features20.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lrfcsvm/internal/dataset"
	"lrfcsvm/internal/features"
	"lrfcsvm/internal/storage"
)

func main() {
	var (
		categories = flag.Int("categories", 20, "number of categories (max 50)")
		perCat     = flag.Int("per-category", 100, "images per category")
		size       = flag.Int("size", 64, "image width and height in pixels")
		seed       = flag.Uint64("seed", 42, "generation seed")
		noise      = flag.Float64("extra-noise", 15, "extra pixel noise")
		workers    = flag.Int("workers", 0, "extraction workers (0 = GOMAXPROCS)")
		out        = flag.String("out", "features.bin", "output feature store")
	)
	flag.Parse()

	gen, err := dataset.NewGenerator(dataset.Spec{
		Categories:        *categories,
		ImagesPerCategory: *perCat,
		Width:             *size,
		Height:            *size,
		Seed:              *seed,
		ExtraNoise:        *noise,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "featextract:", err)
		os.Exit(2)
	}
	start := time.Now()
	var extractor features.Extractor
	raw := extractor.ExtractAll(gen, *workers)
	norm, err := features.FitNormalizer(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "featextract:", err)
		os.Exit(1)
	}
	descriptors := norm.ApplyAll(raw)
	if err := storage.SaveFeatures(*out, descriptors, gen.Labels()); err != nil {
		fmt.Fprintln(os.Stderr, "featextract:", err)
		os.Exit(1)
	}
	fmt.Printf("extracted %d descriptors (%d-dimensional) in %v -> %s\n",
		len(descriptors), features.Dim, time.Since(start).Round(time.Millisecond), *out)
}
