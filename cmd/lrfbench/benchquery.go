package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/eval"
	"lrfcsvm/internal/linalg"
)

// This file is the query-path micro-benchmark mode of lrfbench
// (-benchquery): it measures the steady-state query hot path — the
// score-everything-then-argsort pattern the engine used before the sharded
// refactor versus the streaming per-shard top-K selection with pooled
// scratch memory — with -benchmem-style statistics (ns/op, B/op,
// allocs/op), prints them, and emits a machine-readable BENCH_query.json so
// the performance trajectory is tracked across PRs.

// benchQueryK is the result-list length of the measured queries, the
// server's default page size.
const benchQueryK = 20

// benchEntry is one measured benchmark in BENCH_query.json.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the BENCH_query.json document.
type benchReport struct {
	Profile    string       `json:"profile"`
	Images     int          `json:"images"`
	K          int          `json:"k"`
	Workers    int          `json:"workers"`
	GoVersion  string       `json:"go_version"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Summary condenses the acceptance numbers: the allocation and latency
	// ratio of the pure ranking path (full-argsort / streaming).
	Summary struct {
		RankingPathAllocRatio float64 `json:"ranking_path_alloc_ratio"`
		RankingPathSpeedup    float64 `json:"ranking_path_speedup"`
	} `json:"summary"`
}

// fullSortSelect replicates the pre-refactor selection: a full stable
// descending argsort truncated to k, materialized as results.
func fullSortSelect(scores []float64, k int) []core.Ranked {
	order := linalg.ArgsortDesc(scores)
	if k > len(order) {
		k = len(order)
	}
	out := make([]core.Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = core.Ranked{Index: order[i], Score: scores[order[i]]}
	}
	return out
}

// measure runs one benchmark function and records it.
func measure(report *benchReport, name string, fn func(b *testing.B)) benchEntry {
	res := testing.Benchmark(fn)
	e := benchEntry{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	report.Benchmarks = append(report.Benchmarks, e)
	fmt.Printf("  %-38s %12.0f ns/op %10d B/op %8d allocs/op\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	return e
}

// runQueryBench measures the query paths on the prepared experiment and
// writes the JSON report to outPath.
func runQueryBench(exp *eval.Experiment, profile, outPath string) error {
	report := &benchReport{
		Profile:   profile,
		Images:    len(exp.Visual),
		K:         benchQueryK,
		Workers:   1,
		GoVersion: runtime.Version(),
	}
	queries := exp.SampleQueries()
	probes := queries
	if len(probes) > 6 {
		probes = probes[:6]
	}
	fixedCtx := func() *core.QueryContext {
		ctx := exp.QueryContext(queries[0])
		ctx.Workers = 1
		return ctx
	}

	fmt.Printf("query-path benchmarks (%d images, K=%d, Workers=1):\n", report.Images, benchQueryK)

	// The pure ranking path (no per-round training): Euclidean probes
	// rotating across query images, so every operation pays the real
	// steady-state cost of serving a new user instead of a warm
	// distance-row cache. This pair is the allocs/op acceptance comparison.
	full := measure(report, "ranking-path/euclidean/fullsort", func(b *testing.B) {
		ctx := fixedCtx()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = probes[i%len(probes)]
			scores, err := core.Euclidean{}.Rank(ctx)
			if err != nil {
				b.Fatal(err)
			}
			fullSortSelect(scores, benchQueryK)
		}
	})
	stream := measure(report, "ranking-path/euclidean/stream", func(b *testing.B) {
		ctx := fixedCtx()
		buf := make([]core.Ranked, 0, benchQueryK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = probes[i%len(probes)]
			got, err := core.Euclidean{}.RankTopAppend(ctx, benchQueryK, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			buf = got
		}
	})
	if stream.AllocsPerOp > 0 {
		report.Summary.RankingPathAllocRatio = float64(full.AllocsPerOp) / float64(stream.AllocsPerOp)
	}
	if stream.NsPerOp > 0 {
		report.Summary.RankingPathSpeedup = full.NsPerOp / stream.NsPerOp
	}

	// End-to-end feedback rounds (training included for the SVM schemes):
	// the latency trajectory of one full query under each scheme.
	schemes := []struct {
		name   string
		scheme core.TopKRanker
	}{
		{"euclidean", core.Euclidean{}},
		{"rf-svm", core.RFSVM{Options: exp.Config.SVM}},
		{"lrf-2svms", core.LRF2SVMs{Options: exp.Config.SVM}},
		{"lrf-csvm", core.LRFCSVM{Params: exp.Config.CSVM}},
	}
	for _, s := range schemes {
		s := s
		measure(report, "query/"+s.name+"/fullsort", func(b *testing.B) {
			ctx := fixedCtx()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scores, err := s.scheme.Rank(ctx)
				if err != nil {
					b.Fatal(err)
				}
				fullSortSelect(scores, benchQueryK)
			}
		})
		measure(report, "query/"+s.name+"/stream", func(b *testing.B) {
			ctx := fixedCtx()
			buf := make([]core.Ranked, 0, benchQueryK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.scheme.RankTopAppend(ctx, benchQueryK, buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = got
			}
		})
	}

	fmt.Printf("ranking path: %.1fx fewer allocs/op, %.2fx faster (full-argsort vs streaming top-%d)\n",
		report.Summary.RankingPathAllocRatio, report.Summary.RankingPathSpeedup, benchQueryK)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
