package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/eval"
	"lrfcsvm/internal/kernel"
	"lrfcsvm/internal/linalg"
)

// This file is the query-path micro-benchmark mode of lrfbench
// (-benchquery): it measures the steady-state query hot path — the
// score-everything-then-argsort pattern the engine used before the sharded
// refactor versus the streaming per-shard top-K selection with pooled
// scratch memory — with -benchmem-style statistics (ns/op, B/op,
// allocs/op), prints them, and emits a machine-readable BENCH_query.json so
// the performance trajectory is tracked across PRs.

// benchQueryK is the result-list length of the measured queries, the
// server's default page size.
const benchQueryK = 20

// benchEntry is one measured benchmark in BENCH_query.json.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the BENCH_query.json document.
type benchReport struct {
	Profile    string       `json:"profile"`
	Images     int          `json:"images"`
	K          int          `json:"k"`
	Workers    int          `json:"workers"`
	GoVersion  string       `json:"go_version"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Summary condenses the acceptance numbers: the allocation and latency
	// ratio of the pure ranking path (full-argsort / streaming), and the
	// same ratio for the isolated (pretrained) LRF-2SVMs ranking stage —
	// the end-to-end lrf-2svms lanes are ~95% training, so only the
	// isolated stage measures the selection strategy.
	Summary struct {
		RankingPathAllocRatio float64 `json:"ranking_path_alloc_ratio"`
		RankingPathSpeedup    float64 `json:"ranking_path_speedup"`
		LRF2SVMsRankingStage  float64 `json:"lrf2svms_ranking_stage_speedup"`
	} `json:"summary"`
	// KernelBackend is the backend the headline lanes ran under.
	KernelBackend string `json:"kernel_backend"`
	// Backends is the backend x headline-lane matrix: every selectable
	// compute backend measured on the lrf-csvm stream lane and the pure
	// Euclidean scoring lane.
	Backends []backendLane `json:"backends,omitempty"`
	// Quantized summarizes the int8 approximate-scan lane measured on the
	// boosted collection; the run fails when recall@20 drops below
	// RecallFloor.
	Quantized *quantSummary `json:"quantized,omitempty"`
	// ANN summarizes the candidate-pruning lanes measured on the boosted
	// (>= annBenchMinImages) collection; the run fails when the headline
	// recall drops below RecallFloor.
	ANN *annSummary `json:"ann,omitempty"`
}

// backendLane is one compute backend's measurement of the headline lanes.
type backendLane struct {
	Backend         string  `json:"backend"`
	QueryNsPerOp    float64 `json:"query_lrf_csvm_stream_ns_per_op"`
	ScoringNsPerOp  float64 `json:"ranking_path_euclidean_stream_ns_per_op"`
	SpeedupVsScalar float64 `json:"query_speedup_vs_scalar"`
}

// quantRecallFloor is the CI gate on the quantized lane's recall@20 at the
// default oversample, recorded alongside the measured numbers in
// EXPERIMENTS.md.
const quantRecallFloor = 0.99

// quantSummary is the "quantized" section of BENCH_query.json.
type quantSummary struct {
	Images      int     `json:"images"`
	Oversample  int     `json:"oversample"`
	RecallAt20  float64 `json:"recall_at_20"`
	RecallFloor float64 `json:"recall_floor"`
	Speedup     float64 `json:"speedup_vs_exhaustive"`
}

// lrf2svmsRankingFloor is the regression gate of the isolated LRF-2SVMs
// ranking stage: streaming selection must not be slower than the full
// argsort beyond benchmark noise (the sorting and allocation it removes are
// pure overhead). The 10% margin absorbs scheduler jitter on shared CI
// hosts; a genuine regression of the streaming path shows up far above it.
const lrf2svmsRankingFloor = 1.10

// annBenchMinImages is the collection floor of the ANN lanes: pruning a
// collection that fits in one or two shards proves nothing, so smaller
// experiment profiles are boosted to this size with jittered descriptors.
const annBenchMinImages = 2048

// annRecallFloor is the CI gate on the headline (default probe width)
// recall@20, recorded alongside the measured numbers in EXPERIMENTS.md. A
// run measuring less exits non-zero so the bench-query job fails.
const annRecallFloor = 0.95

// annSummary is the "ann" section of BENCH_query.json.
type annSummary struct {
	Images      int       `json:"images"`
	Clusters    int       `json:"clusters"`
	NProbe      int       `json:"nprobe"`
	RecallAt20  float64   `json:"recall_at_20"`
	Speedup     float64   `json:"speedup_vs_exhaustive"`
	RecallFloor float64   `json:"recall_floor"`
	Sweep       []annLane `json:"nprobe_sweep"`
}

// annLane is one probe-width setting of the recall-vs-latency sweep.
type annLane struct {
	NProbe     int     `json:"nprobe"`
	RecallAt20 float64 `json:"recall_at_20"`
	NsPerOp    float64 `json:"ns_per_op"`
	Speedup    float64 `json:"speedup_vs_exhaustive"`
}

// annBoostCollection grows the experiment's descriptors to at least min
// images by appending jittered copies of real descriptors: the category
// cluster structure survives (what IVF pruning exploits), the size reaches
// the regime where pruning matters, and nothing about the image pipeline has
// to re-run. Deterministic for a fixed seed.
func annBoostCollection(visual []linalg.Vector, min int, seed uint64) []linalg.Vector {
	if len(visual) >= min {
		return visual
	}
	rng := linalg.NewRNG(seed)
	out := make([]linalg.Vector, len(visual), min)
	copy(out, visual)
	for len(out) < min {
		src := visual[len(out)%len(visual)]
		v := make(linalg.Vector, len(src))
		for d := range v {
			v[d] = src[d] + rng.Normal(0, 0.05)
		}
		out = append(out, v)
	}
	return out
}

// boostedBench is the shared fixture of the approximate-scan lanes (ANN
// pruning and the quantized int8 lane): one boosted collection, the probe
// set, the exhaustive oracle's top-20 per probe, and the measured exhaustive
// baseline they are both compared against.
type boostedBench struct {
	visual  []linalg.Vector
	batch   *core.CollectionBatch
	probes  []int
	oracles [][]int
	exhaust benchEntry
}

func (bb *boostedBench) queryCtx(q int) *core.QueryContext {
	return &core.QueryContext{Visual: bb.visual, Query: q, Workers: 1, Batch: bb.batch}
}

// prepareBoostedBench builds the boosted collection, computes the per-probe
// exhaustive oracles and measures the exhaustive streaming baseline.
func prepareBoostedBench(exp *eval.Experiment, report *benchReport) (*boostedBench, error) {
	bb := &boostedBench{visual: annBoostCollection(exp.Visual, annBenchMinImages, 0xA991)}
	bb.batch = core.NewCollectionBatch(bb.visual)
	n := len(bb.visual)

	// Probe images evenly spaced through the collection, so both original
	// and boosted descriptors are queried.
	for q := 0; q < n; q += n / 32 {
		bb.probes = append(bb.probes, q)
	}

	bb.oracles = make([][]int, len(bb.probes))
	for i, q := range bb.probes {
		ranked, err := core.Euclidean{}.RankTop(bb.queryCtx(q), benchQueryK)
		if err != nil {
			return nil, fmt.Errorf("boosted bench: oracle: %w", err)
		}
		bb.oracles[i] = make([]int, len(ranked))
		for j, r := range ranked {
			bb.oracles[i][j] = r.Index
		}
	}

	bb.exhaust = measure(report, "boosted/euclidean/exhaustive", func(b *testing.B) {
		ctx := bb.queryCtx(bb.probes[0])
		buf := make([]core.Ranked, 0, benchQueryK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = bb.probes[i%len(bb.probes)]
			got, err := core.Euclidean{}.RankTopAppend(ctx, benchQueryK, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			buf = got
		}
	})
	return bb, nil
}

// runQuantBench measures the int8 quantized scan lane (approximate scan +
// exact re-score of the survivors) against the exhaustive baseline, with
// recall@20 at the default oversample; the run fails below quantRecallFloor.
func runQuantBench(bb *boostedBench, report *benchReport) error {
	n := len(bb.visual)
	fmt.Printf("\nquantized scan lane (%d images, oversample=%d, K=%d, Workers=1):\n",
		n, core.DefaultQuantizedOversample, benchQueryK)

	entry := measure(report, "quantized/euclidean/stream", func(b *testing.B) {
		ctx := bb.queryCtx(bb.probes[0])
		buf := make([]core.Ranked, 0, benchQueryK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = bb.probes[i%len(bb.probes)]
			got, err := core.Euclidean{}.RankTopQuantized(ctx, benchQueryK, 0, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			buf = got
		}
	})

	var recall float64
	for i, q := range bb.probes {
		ranked, err := core.Euclidean{}.RankTopQuantized(bb.queryCtx(q), benchQueryK, 0, nil)
		if err != nil {
			return fmt.Errorf("quantized bench: %w", err)
		}
		approx := make([]int, len(ranked))
		for j, r := range ranked {
			approx[j] = r.Index
		}
		recall += eval.RecallAtK(bb.oracles[i], approx, benchQueryK)
	}
	recall /= float64(len(bb.probes))

	summary := &quantSummary{
		Images:      n,
		Oversample:  core.DefaultQuantizedOversample,
		RecallAt20:  recall,
		RecallFloor: quantRecallFloor,
	}
	if entry.NsPerOp > 0 {
		summary.Speedup = bb.exhaust.NsPerOp / entry.NsPerOp
	}
	report.Quantized = summary
	fmt.Printf("    recall@%d %.3f  %.2fx vs exhaustive\n", benchQueryK, recall, summary.Speedup)
	if recall < quantRecallFloor {
		return fmt.Errorf("quantized bench: recall@%d %.3f is below the %.2f floor recorded in EXPERIMENTS.md",
			benchQueryK, recall, quantRecallFloor)
	}
	return nil
}

// runANNBench measures the IVF candidate-pruning lanes: the exhaustive
// streaming scan versus the pruned scan (probe + member gathering + exact
// re-rank, the full per-query cost) across several probe widths, with
// recall@20 against the exhaustive oracle for each. The headline lane uses
// the index's default probe width and must clear annRecallFloor.
func runANNBench(bb *boostedBench, report *benchReport) error {
	visual, batch := bb.visual, bb.batch
	idx, err := kernel.BuildCentroidIndex(context.Background(), batch.VisualSet(), kernel.CentroidConfig{})
	if err != nil {
		return fmt.Errorf("ann bench: %w", err)
	}
	clusters := idx.NumClusters()
	defaultNP := clusters / 4
	if defaultNP < 1 {
		defaultNP = 1
	}
	n := len(visual)
	probes, oracles := bb.probes, bb.oracles
	queryCtx := bb.queryCtx

	// candidates resolves one pruned query's candidate set, reusing the
	// cell and list buffers — the same work the engine does per query.
	cellBuf := make([]int, clusters)
	listBuf := make([][]int32, clusters)
	candidates := func(q, nprobe int) core.CandidateSet {
		cells := idx.ProbeInto(cellBuf, visual[q], nprobe)
		lists := listBuf[:0]
		for _, c := range cells {
			lists = append(lists, idx.Members(c))
		}
		return core.CandidateSet{Lists: lists, TailStart: idx.Len()}
	}

	fmt.Printf("\nann candidate-pruning lanes (%d images, %d clusters, K=%d, Workers=1):\n",
		n, clusters, benchQueryK)
	exhaust := bb.exhaust

	summary := &annSummary{
		Images:      n,
		Clusters:    clusters,
		NProbe:      defaultNP,
		RecallFloor: annRecallFloor,
	}
	for _, np := range annSweepWidths(clusters, defaultNP) {
		np := np
		name := fmt.Sprintf("ann/euclidean/stream/nprobe=%d", np)
		if np == defaultNP {
			name = "ann/euclidean/stream"
		}
		entry := measure(report, name, func(b *testing.B) {
			ctx := queryCtx(probes[0])
			buf := make([]core.Ranked, 0, benchQueryK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := probes[i%len(probes)]
				ctx.Query = q
				got, err := core.Euclidean{}.RankTopCandidates(ctx, candidates(q, np), benchQueryK, buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = got
			}
		})
		var recall float64
		for i, q := range probes {
			ranked, err := core.Euclidean{}.RankTopCandidates(queryCtx(q), candidates(q, np), benchQueryK, nil)
			if err != nil {
				return fmt.Errorf("ann bench: %w", err)
			}
			approx := make([]int, len(ranked))
			for j, r := range ranked {
				approx[j] = r.Index
			}
			recall += eval.RecallAtK(oracles[i], approx, benchQueryK)
		}
		recall /= float64(len(probes))
		lane := annLane{NProbe: np, RecallAt20: recall, NsPerOp: entry.NsPerOp}
		if entry.NsPerOp > 0 {
			lane.Speedup = exhaust.NsPerOp / entry.NsPerOp
		}
		summary.Sweep = append(summary.Sweep, lane)
		if np == defaultNP {
			summary.RecallAt20 = recall
			summary.Speedup = lane.Speedup
		}
		fmt.Printf("    nprobe=%-3d recall@%d %.3f  %.2fx vs exhaustive\n", np, benchQueryK, recall, lane.Speedup)
	}
	report.ANN = summary

	if summary.RecallAt20 < annRecallFloor {
		return fmt.Errorf("ann bench: recall@%d %.3f at nprobe=%d is below the %.2f floor recorded in EXPERIMENTS.md",
			benchQueryK, summary.RecallAt20, defaultNP, annRecallFloor)
	}
	if summary.Speedup <= 1 {
		fmt.Printf("    warning: pruned path not faster than exhaustive (%.2fx)\n", summary.Speedup)
	}
	return nil
}

// annSweepWidths picks the probe widths of the recall-vs-latency sweep:
// a few narrow settings, the default, and the everything-probed width whose
// recall is exactly 1 by construction.
func annSweepWidths(clusters, defaultNP int) []int {
	widths := []int{2, defaultNP / 2, defaultNP, 2 * defaultNP, clusters}
	var out []int
	for _, w := range widths {
		if w < 1 || w > clusters {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == w {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// fullSortSelect replicates the pre-refactor selection: a full stable
// descending argsort truncated to k, materialized as results.
func fullSortSelect(scores []float64, k int) []core.Ranked {
	order := linalg.ArgsortDesc(scores)
	if k > len(order) {
		k = len(order)
	}
	out := make([]core.Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = core.Ranked{Index: order[i], Score: scores[order[i]]}
	}
	return out
}

// runBackendMatrix measures every selectable compute backend on the two
// headline lanes: the end-to-end lrf-csvm streaming query (the acceptance
// number) and the pure Euclidean scoring pass. The headline benchmarks above
// run under the default backend; this matrix records how the alternatives
// compare on the same machine, so an avx2 number lands in BENCH_query.json
// without making it the (machine-dependent) headline. The active backend is
// restored afterwards.
func runBackendMatrix(exp *eval.Experiment, report *benchReport) error {
	orig := kernel.Backend()
	defer func() {
		if err := kernel.SetBackend(orig); err != nil {
			panic(err) // restoring a previously-active backend cannot fail
		}
	}()

	queries := exp.SampleQueries()
	probes := queries
	if len(probes) > 6 {
		probes = probes[:6]
	}
	fmt.Printf("\nbackend matrix (query/lrf-csvm/stream and ranking-path/euclidean/stream):\n")
	var scalarNs float64
	for _, name := range kernel.Backends() {
		if name == kernel.BackendAuto {
			continue // alias for one of the concrete backends below
		}
		if err := kernel.SetBackend(name); err != nil {
			return fmt.Errorf("backend matrix: %w", err)
		}
		lane := backendLane{Backend: name}
		scheme := core.LRFCSVM{Params: exp.Config.CSVM}
		entry := measure(report, "backend/"+name+"/query/lrf-csvm/stream", func(b *testing.B) {
			ctx := exp.QueryContext(queries[0])
			ctx.Workers = 1
			buf := make([]core.Ranked, 0, benchQueryK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := scheme.RankTopAppend(ctx, benchQueryK, buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = got
			}
		})
		lane.QueryNsPerOp = entry.NsPerOp
		entry = measure(report, "backend/"+name+"/ranking-path/euclidean/stream", func(b *testing.B) {
			ctx := exp.QueryContext(queries[0])
			ctx.Workers = 1
			buf := make([]core.Ranked, 0, benchQueryK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx.Query = probes[i%len(probes)]
				got, err := core.Euclidean{}.RankTopAppend(ctx, benchQueryK, buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = got
			}
		})
		lane.ScoringNsPerOp = entry.NsPerOp
		if name == kernel.BackendScalar {
			scalarNs = lane.QueryNsPerOp
		}
		report.Backends = append(report.Backends, lane)
	}
	for i := range report.Backends {
		if scalarNs > 0 && report.Backends[i].QueryNsPerOp > 0 {
			report.Backends[i].SpeedupVsScalar = scalarNs / report.Backends[i].QueryNsPerOp
		}
	}
	return nil
}

// measure runs one benchmark function and records it.
func measure(report *benchReport, name string, fn func(b *testing.B)) benchEntry {
	return record(report, sampleBench(name, fn))
}

// sampleBench runs one benchmark trial without recording it; callers that
// retry noisy trials keep the best sample and record only that.
func sampleBench(name string, fn func(b *testing.B)) benchEntry {
	res := testing.Benchmark(fn)
	return benchEntry{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// record appends a sampled entry to the report and prints it.
func record(report *benchReport, e benchEntry) benchEntry {
	report.Benchmarks = append(report.Benchmarks, e)
	fmt.Printf("  %-38s %12.0f ns/op %10d B/op %8d allocs/op\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	return e
}

// runQueryBench measures the query paths on the prepared experiment and
// writes the JSON report to outPath.
func runQueryBench(exp *eval.Experiment, profile, outPath string) error {
	report := &benchReport{
		Profile:       profile,
		Images:        len(exp.Visual),
		K:             benchQueryK,
		Workers:       1,
		GoVersion:     runtime.Version(),
		KernelBackend: kernel.Backend(),
	}
	queries := exp.SampleQueries()
	probes := queries
	if len(probes) > 6 {
		probes = probes[:6]
	}
	fixedCtx := func() *core.QueryContext {
		ctx := exp.QueryContext(queries[0])
		ctx.Workers = 1
		return ctx
	}

	fmt.Printf("query-path benchmarks (%d images, K=%d, Workers=1):\n", report.Images, benchQueryK)

	// The pure ranking path (no per-round training): Euclidean probes
	// rotating across query images, so every operation pays the real
	// steady-state cost of serving a new user instead of a warm
	// distance-row cache. This pair is the allocs/op acceptance comparison.
	full := measure(report, "ranking-path/euclidean/fullsort", func(b *testing.B) {
		ctx := fixedCtx()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = probes[i%len(probes)]
			scores, err := core.Euclidean{}.Rank(ctx)
			if err != nil {
				b.Fatal(err)
			}
			fullSortSelect(scores, benchQueryK)
		}
	})
	stream := measure(report, "ranking-path/euclidean/stream", func(b *testing.B) {
		ctx := fixedCtx()
		buf := make([]core.Ranked, 0, benchQueryK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = probes[i%len(probes)]
			got, err := core.Euclidean{}.RankTopAppend(ctx, benchQueryK, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			buf = got
		}
	})
	if stream.AllocsPerOp > 0 {
		report.Summary.RankingPathAllocRatio = float64(full.AllocsPerOp) / float64(stream.AllocsPerOp)
	}
	if stream.NsPerOp > 0 {
		report.Summary.RankingPathSpeedup = full.NsPerOp / stream.NsPerOp
	}

	// The isolated LRF-2SVMs ranking stage: models trained once, then only
	// the two-modality scoring pass is measured. The end-to-end
	// query/lrf-2svms lanes are ~95% SVM training, so their
	// fullsort-vs-stream delta is benchmark noise (recorded runs have shown
	// either side "winning" by up to 10%); this pair is the lane where the
	// selection strategy is actually visible, and it gates the floor.
	pre, err := (core.LRF2SVMs{Options: exp.Config.SVM}).Pretrain(fixedCtx())
	if err != nil {
		return fmt.Errorf("lrf-2svms pretrain: %w", err)
	}
	fullFn := func(b *testing.B) {
		ctx := fixedCtx()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scores, err := pre.Rank(ctx)
			if err != nil {
				b.Fatal(err)
			}
			fullSortSelect(scores, benchQueryK)
		}
	}
	streamFn := func(b *testing.B) {
		ctx := fixedCtx()
		buf := make([]core.Ranked, 0, benchQueryK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := pre.RankTopAppend(ctx, benchQueryK, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			buf = got
		}
	}
	// The two trials run back-to-back, so a scheduler spike during either
	// one can push the ratio over the floor even though the steady-state
	// ordering is stable. Noise on this pair is one-sided (spikes only
	// inflate a trial), so the minimum over up to three trials per lane is
	// the robust estimator; the floor gates the best pair observed.
	var full2, stream2 benchEntry
	for attempt := 0; attempt < 3; attempt++ {
		f := sampleBench("ranking-path/lrf-2svms/fullsort", fullFn)
		s := sampleBench("ranking-path/lrf-2svms/stream", streamFn)
		if attempt == 0 || f.NsPerOp < full2.NsPerOp {
			full2 = f
		}
		if attempt == 0 || s.NsPerOp < stream2.NsPerOp {
			stream2 = s
		}
		if stream2.NsPerOp <= full2.NsPerOp*lrf2svmsRankingFloor {
			break
		}
	}
	record(report, full2)
	record(report, stream2)
	if stream2.NsPerOp > 0 {
		report.Summary.LRF2SVMsRankingStage = full2.NsPerOp / stream2.NsPerOp
	}
	if stream2.NsPerOp > full2.NsPerOp*lrf2svmsRankingFloor {
		return fmt.Errorf("lrf-2svms ranking stage: stream %.0f ns/op is more than %.0f%% above fullsort %.0f ns/op",
			stream2.NsPerOp, 100*(lrf2svmsRankingFloor-1), full2.NsPerOp)
	}

	// End-to-end feedback rounds (training included for the SVM schemes):
	// the latency trajectory of one full query under each scheme.
	schemes := []struct {
		name   string
		scheme core.TopKRanker
	}{
		{"euclidean", core.Euclidean{}},
		{"rf-svm", core.RFSVM{Options: exp.Config.SVM}},
		{"lrf-2svms", core.LRF2SVMs{Options: exp.Config.SVM}},
		{"lrf-csvm", core.LRFCSVM{Params: exp.Config.CSVM}},
	}
	for _, s := range schemes {
		s := s
		measure(report, "query/"+s.name+"/fullsort", func(b *testing.B) {
			ctx := fixedCtx()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scores, err := s.scheme.Rank(ctx)
				if err != nil {
					b.Fatal(err)
				}
				fullSortSelect(scores, benchQueryK)
			}
		})
		measure(report, "query/"+s.name+"/stream", func(b *testing.B) {
			ctx := fixedCtx()
			buf := make([]core.Ranked, 0, benchQueryK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.scheme.RankTopAppend(ctx, benchQueryK, buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = got
			}
		})
	}

	fmt.Printf("ranking path: %.1fx fewer allocs/op, %.2fx faster (full-argsort vs streaming top-%d)\n",
		report.Summary.RankingPathAllocRatio, report.Summary.RankingPathSpeedup, benchQueryK)

	if err := runBackendMatrix(exp, report); err != nil {
		return err
	}

	bb, err := prepareBoostedBench(exp, report)
	if err != nil {
		return err
	}
	if err := runQuantBench(bb, report); err != nil {
		return err
	}
	if err := runANNBench(bb, report); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
