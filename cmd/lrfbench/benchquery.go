package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/eval"
	"lrfcsvm/internal/kernel"
	"lrfcsvm/internal/linalg"
)

// This file is the query-path micro-benchmark mode of lrfbench
// (-benchquery): it measures the steady-state query hot path — the
// score-everything-then-argsort pattern the engine used before the sharded
// refactor versus the streaming per-shard top-K selection with pooled
// scratch memory — with -benchmem-style statistics (ns/op, B/op,
// allocs/op), prints them, and emits a machine-readable BENCH_query.json so
// the performance trajectory is tracked across PRs.

// benchQueryK is the result-list length of the measured queries, the
// server's default page size.
const benchQueryK = 20

// benchEntry is one measured benchmark in BENCH_query.json.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the BENCH_query.json document.
type benchReport struct {
	Profile    string       `json:"profile"`
	Images     int          `json:"images"`
	K          int          `json:"k"`
	Workers    int          `json:"workers"`
	GoVersion  string       `json:"go_version"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Summary condenses the acceptance numbers: the allocation and latency
	// ratio of the pure ranking path (full-argsort / streaming).
	Summary struct {
		RankingPathAllocRatio float64 `json:"ranking_path_alloc_ratio"`
		RankingPathSpeedup    float64 `json:"ranking_path_speedup"`
	} `json:"summary"`
	// ANN summarizes the candidate-pruning lanes measured on the boosted
	// (>= annBenchMinImages) collection; the run fails when the headline
	// recall drops below RecallFloor.
	ANN *annSummary `json:"ann,omitempty"`
}

// annBenchMinImages is the collection floor of the ANN lanes: pruning a
// collection that fits in one or two shards proves nothing, so smaller
// experiment profiles are boosted to this size with jittered descriptors.
const annBenchMinImages = 2048

// annRecallFloor is the CI gate on the headline (default probe width)
// recall@20, recorded alongside the measured numbers in EXPERIMENTS.md. A
// run measuring less exits non-zero so the bench-query job fails.
const annRecallFloor = 0.95

// annSummary is the "ann" section of BENCH_query.json.
type annSummary struct {
	Images      int       `json:"images"`
	Clusters    int       `json:"clusters"`
	NProbe      int       `json:"nprobe"`
	RecallAt20  float64   `json:"recall_at_20"`
	Speedup     float64   `json:"speedup_vs_exhaustive"`
	RecallFloor float64   `json:"recall_floor"`
	Sweep       []annLane `json:"nprobe_sweep"`
}

// annLane is one probe-width setting of the recall-vs-latency sweep.
type annLane struct {
	NProbe     int     `json:"nprobe"`
	RecallAt20 float64 `json:"recall_at_20"`
	NsPerOp    float64 `json:"ns_per_op"`
	Speedup    float64 `json:"speedup_vs_exhaustive"`
}

// annBoostCollection grows the experiment's descriptors to at least min
// images by appending jittered copies of real descriptors: the category
// cluster structure survives (what IVF pruning exploits), the size reaches
// the regime where pruning matters, and nothing about the image pipeline has
// to re-run. Deterministic for a fixed seed.
func annBoostCollection(visual []linalg.Vector, min int, seed uint64) []linalg.Vector {
	if len(visual) >= min {
		return visual
	}
	rng := linalg.NewRNG(seed)
	out := make([]linalg.Vector, len(visual), min)
	copy(out, visual)
	for len(out) < min {
		src := visual[len(out)%len(visual)]
		v := make(linalg.Vector, len(src))
		for d := range v {
			v[d] = src[d] + rng.Normal(0, 0.05)
		}
		out = append(out, v)
	}
	return out
}

// runANNBench measures the IVF candidate-pruning lanes: the exhaustive
// streaming scan versus the pruned scan (probe + member gathering + exact
// re-rank, the full per-query cost) across several probe widths, with
// recall@20 against the exhaustive oracle for each. The headline lane uses
// the index's default probe width and must clear annRecallFloor.
func runANNBench(exp *eval.Experiment, report *benchReport) error {
	visual := annBoostCollection(exp.Visual, annBenchMinImages, 0xA991)
	batch := core.NewCollectionBatch(visual)
	idx, err := kernel.BuildCentroidIndex(context.Background(), batch.VisualSet(), kernel.CentroidConfig{})
	if err != nil {
		return fmt.Errorf("ann bench: %w", err)
	}
	clusters := idx.NumClusters()
	defaultNP := clusters / 4
	if defaultNP < 1 {
		defaultNP = 1
	}
	n := len(visual)

	// Probe images evenly spaced through the collection, so both original
	// and boosted descriptors are queried.
	var probes []int
	for q := 0; q < n; q += n / 32 {
		probes = append(probes, q)
	}
	queryCtx := func(q int) *core.QueryContext {
		return &core.QueryContext{Visual: visual, Query: q, Workers: 1, Batch: batch}
	}

	// The exhaustive oracle's top-20 per probe, for recall.
	oracles := make([][]int, len(probes))
	for i, q := range probes {
		ranked, err := core.Euclidean{}.RankTop(queryCtx(q), benchQueryK)
		if err != nil {
			return fmt.Errorf("ann bench: oracle: %w", err)
		}
		oracles[i] = make([]int, len(ranked))
		for j, r := range ranked {
			oracles[i][j] = r.Index
		}
	}

	// candidates resolves one pruned query's candidate set, reusing the
	// cell and list buffers — the same work the engine does per query.
	cellBuf := make([]int, clusters)
	listBuf := make([][]int32, clusters)
	candidates := func(q, nprobe int) core.CandidateSet {
		cells := idx.ProbeInto(cellBuf, visual[q], nprobe)
		lists := listBuf[:0]
		for _, c := range cells {
			lists = append(lists, idx.Members(c))
		}
		return core.CandidateSet{Lists: lists, TailStart: idx.Len()}
	}

	fmt.Printf("\nann candidate-pruning lanes (%d images, %d clusters, K=%d, Workers=1):\n",
		n, clusters, benchQueryK)
	exhaust := measure(report, "ann/euclidean/exhaustive", func(b *testing.B) {
		ctx := queryCtx(probes[0])
		buf := make([]core.Ranked, 0, benchQueryK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = probes[i%len(probes)]
			got, err := core.Euclidean{}.RankTopAppend(ctx, benchQueryK, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			buf = got
		}
	})

	summary := &annSummary{
		Images:      n,
		Clusters:    clusters,
		NProbe:      defaultNP,
		RecallFloor: annRecallFloor,
	}
	for _, np := range annSweepWidths(clusters, defaultNP) {
		np := np
		name := fmt.Sprintf("ann/euclidean/stream/nprobe=%d", np)
		if np == defaultNP {
			name = "ann/euclidean/stream"
		}
		entry := measure(report, name, func(b *testing.B) {
			ctx := queryCtx(probes[0])
			buf := make([]core.Ranked, 0, benchQueryK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := probes[i%len(probes)]
				ctx.Query = q
				got, err := core.Euclidean{}.RankTopCandidates(ctx, candidates(q, np), benchQueryK, buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = got
			}
		})
		var recall float64
		for i, q := range probes {
			ranked, err := core.Euclidean{}.RankTopCandidates(queryCtx(q), candidates(q, np), benchQueryK, nil)
			if err != nil {
				return fmt.Errorf("ann bench: %w", err)
			}
			approx := make([]int, len(ranked))
			for j, r := range ranked {
				approx[j] = r.Index
			}
			recall += eval.RecallAtK(oracles[i], approx, benchQueryK)
		}
		recall /= float64(len(probes))
		lane := annLane{NProbe: np, RecallAt20: recall, NsPerOp: entry.NsPerOp}
		if entry.NsPerOp > 0 {
			lane.Speedup = exhaust.NsPerOp / entry.NsPerOp
		}
		summary.Sweep = append(summary.Sweep, lane)
		if np == defaultNP {
			summary.RecallAt20 = recall
			summary.Speedup = lane.Speedup
		}
		fmt.Printf("    nprobe=%-3d recall@%d %.3f  %.2fx vs exhaustive\n", np, benchQueryK, recall, lane.Speedup)
	}
	report.ANN = summary

	if summary.RecallAt20 < annRecallFloor {
		return fmt.Errorf("ann bench: recall@%d %.3f at nprobe=%d is below the %.2f floor recorded in EXPERIMENTS.md",
			benchQueryK, summary.RecallAt20, defaultNP, annRecallFloor)
	}
	if summary.Speedup <= 1 {
		fmt.Printf("    warning: pruned path not faster than exhaustive (%.2fx)\n", summary.Speedup)
	}
	return nil
}

// annSweepWidths picks the probe widths of the recall-vs-latency sweep:
// a few narrow settings, the default, and the everything-probed width whose
// recall is exactly 1 by construction.
func annSweepWidths(clusters, defaultNP int) []int {
	widths := []int{2, defaultNP / 2, defaultNP, 2 * defaultNP, clusters}
	var out []int
	for _, w := range widths {
		if w < 1 || w > clusters {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == w {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// fullSortSelect replicates the pre-refactor selection: a full stable
// descending argsort truncated to k, materialized as results.
func fullSortSelect(scores []float64, k int) []core.Ranked {
	order := linalg.ArgsortDesc(scores)
	if k > len(order) {
		k = len(order)
	}
	out := make([]core.Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = core.Ranked{Index: order[i], Score: scores[order[i]]}
	}
	return out
}

// measure runs one benchmark function and records it.
func measure(report *benchReport, name string, fn func(b *testing.B)) benchEntry {
	res := testing.Benchmark(fn)
	e := benchEntry{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	report.Benchmarks = append(report.Benchmarks, e)
	fmt.Printf("  %-38s %12.0f ns/op %10d B/op %8d allocs/op\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	return e
}

// runQueryBench measures the query paths on the prepared experiment and
// writes the JSON report to outPath.
func runQueryBench(exp *eval.Experiment, profile, outPath string) error {
	report := &benchReport{
		Profile:   profile,
		Images:    len(exp.Visual),
		K:         benchQueryK,
		Workers:   1,
		GoVersion: runtime.Version(),
	}
	queries := exp.SampleQueries()
	probes := queries
	if len(probes) > 6 {
		probes = probes[:6]
	}
	fixedCtx := func() *core.QueryContext {
		ctx := exp.QueryContext(queries[0])
		ctx.Workers = 1
		return ctx
	}

	fmt.Printf("query-path benchmarks (%d images, K=%d, Workers=1):\n", report.Images, benchQueryK)

	// The pure ranking path (no per-round training): Euclidean probes
	// rotating across query images, so every operation pays the real
	// steady-state cost of serving a new user instead of a warm
	// distance-row cache. This pair is the allocs/op acceptance comparison.
	full := measure(report, "ranking-path/euclidean/fullsort", func(b *testing.B) {
		ctx := fixedCtx()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = probes[i%len(probes)]
			scores, err := core.Euclidean{}.Rank(ctx)
			if err != nil {
				b.Fatal(err)
			}
			fullSortSelect(scores, benchQueryK)
		}
	})
	stream := measure(report, "ranking-path/euclidean/stream", func(b *testing.B) {
		ctx := fixedCtx()
		buf := make([]core.Ranked, 0, benchQueryK)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Query = probes[i%len(probes)]
			got, err := core.Euclidean{}.RankTopAppend(ctx, benchQueryK, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			buf = got
		}
	})
	if stream.AllocsPerOp > 0 {
		report.Summary.RankingPathAllocRatio = float64(full.AllocsPerOp) / float64(stream.AllocsPerOp)
	}
	if stream.NsPerOp > 0 {
		report.Summary.RankingPathSpeedup = full.NsPerOp / stream.NsPerOp
	}

	// End-to-end feedback rounds (training included for the SVM schemes):
	// the latency trajectory of one full query under each scheme.
	schemes := []struct {
		name   string
		scheme core.TopKRanker
	}{
		{"euclidean", core.Euclidean{}},
		{"rf-svm", core.RFSVM{Options: exp.Config.SVM}},
		{"lrf-2svms", core.LRF2SVMs{Options: exp.Config.SVM}},
		{"lrf-csvm", core.LRFCSVM{Params: exp.Config.CSVM}},
	}
	for _, s := range schemes {
		s := s
		measure(report, "query/"+s.name+"/fullsort", func(b *testing.B) {
			ctx := fixedCtx()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scores, err := s.scheme.Rank(ctx)
				if err != nil {
					b.Fatal(err)
				}
				fullSortSelect(scores, benchQueryK)
			}
		})
		measure(report, "query/"+s.name+"/stream", func(b *testing.B) {
			ctx := fixedCtx()
			buf := make([]core.Ranked, 0, benchQueryK)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := s.scheme.RankTopAppend(ctx, benchQueryK, buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				buf = got
			}
		})
	}

	fmt.Printf("ranking path: %.1fx fewer allocs/op, %.2fx faster (full-argsort vs streaming top-%d)\n",
		report.Summary.RankingPathAllocRatio, report.Summary.RankingPathSpeedup, benchQueryK)

	if err := runANNBench(exp, report); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
