package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/eval"
)

// This file is the feedback-training micro-benchmark mode of lrfbench
// (-benchtrain): it measures core.TrainCoupled — the dominant per-round
// cost of the LRF-CSVM feedback path — on exactly the training problems
// the scheme produces (core.LRFCSVM.TrainingProblem), across the trainer's
// configuration lanes, and emits a machine-readable BENCH_train.json so
// the training-cost trajectory is tracked across PRs like BENCH_query.json
// tracks the query path.

// preOverhaulReference records core.TrainCoupled as measured at commit
// 9fa81b2 — the training path before the fused-selection/pooled-scratch/
// cached-decision overhaul — on the exact problem this tool measures (the
// CI 20-Category profile, seed 42, first sample query, extracted with the
// same TrainingProblem code), on a 1-core Intel Xeon @ 2.10GHz, the host
// that generated the committed BENCH_train.json; see EXPERIMENTS.md. It is
// a recorded historical baseline: regenerating the file on different
// hardware refreshes every lane below but not this constant, so the
// cross-version ratios are only meaningful on comparable hosts.
var preOverhaulReference = benchEntry{
	Name:        "train/coupled/pre-overhaul@9fa81b2",
	NsPerOp:     1030063,
	BytesPerOp:  133313,
	AllocsPerOp: 680,
}

// trainBenchReport is the BENCH_train.json document.
type trainBenchReport struct {
	Profile   string `json:"profile"`
	Images    int    `json:"images"`
	Labeled   int    `json:"labeled"`
	Unlabeled int    `json:"unlabeled"`
	GoVersion string `json:"go_version"`
	// Reference is the recorded pre-overhaul baseline (see
	// preOverhaulReference for provenance and caveats).
	Reference  benchEntry   `json:"reference"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Diagnostics reports the solver work of one default-config round and
	// one fast-lane round: retrainings of the alternating optimization,
	// total SMO pair updates and shrink passes.
	Diagnostics struct {
		BaselineRetrainings      int `json:"baseline_retrainings"`
		BaselineSolverIterations int `json:"baseline_solver_iterations"`
		FastlaneRetrainings      int `json:"fastlane_retrainings"`
		FastlaneSolverIterations int `json:"fastlane_solver_iterations"`
		FastlaneSolverShrinks    int `json:"fastlane_solver_shrinks"`
	} `json:"diagnostics"`
	Summary struct {
		// Workers4SpeedupVsPreOverhaul is the headline acceptance number:
		// recorded pre-overhaul ns/op over the Workers=4 fast lane.
		Workers4SpeedupVsPreOverhaul float64 `json:"workers4_speedup_vs_pre_overhaul"`
		// AllocRatioVsPreOverhaul is pre-overhaul allocs/op over the
		// default lane's (the pooled solver scratch and deferred
		// support-vector expansion shrink it on every configuration).
		AllocRatioVsPreOverhaul float64 `json:"alloc_ratio_vs_pre_overhaul"`
		// FastlaneSpeedupInFile compares lanes measured in this run:
		// default lane ns/op over the Workers=4 fast lane's.
		FastlaneSpeedupInFile float64 `json:"fastlane_speedup_in_file"`
	} `json:"summary"`
}

// runTrainBench measures the coupled-training lanes (core.TrainLanes — the
// same table BenchmarkTrainCoupled runs, so the two benchmarks always
// measure identical configurations) on the prepared
// experiment and writes the JSON report to outPath.
func runTrainBench(exp *eval.Experiment, profile, outPath string) error {
	queries := exp.SampleQueries()
	scheme := core.LRFCSVM{Params: exp.Config.CSVM}
	ctx := exp.QueryContext(queries[0])
	modalities, labels, initial, err := scheme.TrainingProblem(ctx)
	if err != nil {
		return err
	}

	report := &trainBenchReport{
		Profile:   profile,
		Images:    len(exp.Visual),
		Labeled:   len(labels),
		Unlabeled: len(initial),
		GoVersion: runtime.Version(),
		Reference: preOverhaulReference,
	}
	fmt.Printf("feedback-training benchmarks (%d images, %d labeled + %d unlabeled per modality):\n",
		report.Images, report.Labeled, report.Unlabeled)

	base := exp.Config.CSVM.Coupled
	lanes := core.TrainLanes()
	entries := make(map[string]benchEntry, len(lanes))
	for _, lane := range lanes {
		cfg := base
		lane.Apply(&cfg)
		name := "train/coupled/" + lane.Name
		entries[lane.Name] = measureTrain(report, name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.TrainCoupled(modalities, labels, initial, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// One diagnostic round per headline lane.
	baseRes, err := core.TrainCoupled(modalities, labels, initial, base)
	if err != nil {
		return err
	}
	fastCfg := base
	lanes[len(lanes)-1].Apply(&fastCfg)
	fastRes, err := core.TrainCoupled(modalities, labels, initial, fastCfg)
	if err != nil {
		return err
	}
	report.Diagnostics.BaselineRetrainings = baseRes.Retrainings
	report.Diagnostics.BaselineSolverIterations = baseRes.SolverIterations
	report.Diagnostics.FastlaneRetrainings = fastRes.Retrainings
	report.Diagnostics.FastlaneSolverIterations = fastRes.SolverIterations
	report.Diagnostics.FastlaneSolverShrinks = fastRes.SolverShrinks

	fast := entries["fastlane-w4"]
	def := entries["baseline"]
	if fast.NsPerOp > 0 {
		report.Summary.Workers4SpeedupVsPreOverhaul = preOverhaulReference.NsPerOp / fast.NsPerOp
		report.Summary.FastlaneSpeedupInFile = def.NsPerOp / fast.NsPerOp
	}
	if def.AllocsPerOp > 0 {
		report.Summary.AllocRatioVsPreOverhaul = float64(preOverhaulReference.AllocsPerOp) / float64(def.AllocsPerOp)
	}

	fmt.Printf("fast lane (Workers=4 + shrinking + warm start): %.2fx vs recorded pre-overhaul baseline, %.2fx vs this run's default lane; default lane allocs/op down %.1fx\n",
		report.Summary.Workers4SpeedupVsPreOverhaul, report.Summary.FastlaneSpeedupInFile, report.Summary.AllocRatioVsPreOverhaul)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// measureTrain runs one benchmark function and records it in the report.
func measureTrain(report *trainBenchReport, name string, fn func(b *testing.B)) benchEntry {
	res := testing.Benchmark(fn)
	e := benchEntry{
		Name:        name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	report.Benchmarks = append(report.Benchmarks, e)
	fmt.Printf("  %-38s %12.0f ns/op %10d B/op %8d allocs/op\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	return e
}
