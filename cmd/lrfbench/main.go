// Command lrfbench reproduces the paper's evaluation: Tables 1-2 and
// Figures 3-4 (average precision of Euclidean, RF-SVM, LRF-2SVMs and
// LRF-CSVM versus the number of returned images on the 20-Category and
// 50-Category datasets), plus the ablation sweeps described in DESIGN.md.
//
// Examples:
//
//	lrfbench -dataset 20                      # Table 1 + Figure 3, full scale
//	lrfbench -dataset 50 -queries 100         # Table 2 with fewer queries
//	lrfbench -dataset 20 -profile ci          # fast scaled-down profile
//	lrfbench -dataset 20 -ablation rho        # rho-ceiling ablation
//	lrfbench -profile ci -benchquery          # query-path ns/op + allocs/op,
//	                                          # written to BENCH_query.json
//	lrfbench -profile ci -benchtrain          # feedback-training lanes
//	                                          # (TrainCoupled), written to
//	                                          # BENCH_train.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lrfcsvm/internal/core"
	"lrfcsvm/internal/eval"
)

func main() {
	var (
		datasetFlag = flag.Int("dataset", 20, "dataset to evaluate: 20 or 50 categories")
		profile     = flag.String("profile", "full", "experiment profile: full (paper scale) or ci (scaled down)")
		queries     = flag.Int("queries", 0, "override the number of evaluation queries (0 keeps the profile default)")
		seed        = flag.Uint64("seed", 42, "experiment seed")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		ablation    = flag.String("ablation", "", "run an ablation instead of the main table: selection, rho, delta, unlabeled, logkernel")
		benchquery  = flag.Bool("benchquery", false, "benchmark the query hot path (-benchmem statistics) instead of the main table")
		benchtrain  = flag.Bool("benchtrain", false, "benchmark the feedback-training path (core.TrainCoupled lanes) instead of the main table")
		benchout    = flag.String("benchout", "", "output path of the machine-readable benchmark report (default BENCH_query.json / BENCH_train.json / BENCH_load.json by mode)")
		loadtest    = flag.Bool("loadtest", false, "run the closed-loop serving-path load test against the in-process HTTP handler, written to BENCH_load.json; exits non-zero on SLO violation")
		loadusers   = flag.String("loadusers", "8,32,128", "comma-separated concurrency levels of -loadtest")
		loaditers   = flag.Int("loaditers", 0, "closed-loop iterations per simulated user in -loadtest (0 = profile default: 10 full, 3 ci)")
	)
	flag.Parse()

	// The load test prepares its own synthetic collection — no need for the
	// full evaluation dataset below.
	if *loadtest {
		out := *benchout
		if out == "" {
			out = "BENCH_load.json"
		}
		if err := runLoadTest(*profile, *loadusers, *loaditers, *seed, out); err != nil {
			fmt.Fprintln(os.Stderr, "lrfbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg, name, figure, err := buildConfig(*datasetFlag, *profile, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrfbench:", err)
		os.Exit(2)
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	cfg.Workers = *workers

	start := time.Now()
	fmt.Printf("preparing %d-Category dataset (%d images, %dx%d) and %d log sessions...\n",
		cfg.Dataset.Categories, cfg.Dataset.Categories*cfg.Dataset.ImagesPerCategory,
		cfg.Dataset.Width, cfg.Dataset.Height, cfg.Log.Sessions)
	exp, err := eval.Prepare(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrfbench:", err)
		os.Exit(1)
	}
	fmt.Printf("prepared in %v (log coverage %.0f%%, %d judgments)\n\n",
		time.Since(start).Round(time.Millisecond), 100*exp.LogStats.CoverageFraction, exp.LogStats.TotalJudgments)

	if *benchquery {
		out := *benchout
		if out == "" {
			out = "BENCH_query.json"
		}
		if err := runQueryBench(exp, *profile, out); err != nil {
			fmt.Fprintln(os.Stderr, "lrfbench:", err)
			os.Exit(1)
		}
		return
	}

	if *benchtrain {
		out := *benchout
		if out == "" {
			out = "BENCH_train.json"
		}
		if err := runTrainBench(exp, *profile, out); err != nil {
			fmt.Fprintln(os.Stderr, "lrfbench:", err)
			os.Exit(1)
		}
		return
	}

	if *ablation != "" {
		if err := runAblation(exp, *ablation); err != nil {
			fmt.Fprintln(os.Stderr, "lrfbench:", err)
			os.Exit(1)
		}
		return
	}

	table, err := exp.Run(name, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrfbench:", err)
		os.Exit(1)
	}
	fmt.Println(table.Format())
	fmt.Println(eval.FromTable(table, figure).Format())
	fmt.Printf("total wall time %v\n", time.Since(start).Round(time.Second))
}

func buildConfig(dataset int, profile string, seed uint64) (eval.Config, string, string, error) {
	var cfg eval.Config
	var name, figure string
	switch dataset {
	case 20:
		cfg, name, figure = eval.Paper20(seed), "Table 1", "Figure 3"
		if profile == "ci" {
			cfg = eval.CI20(seed)
			name, figure = "Table 1 (CI profile)", "Figure 3 (CI profile)"
		}
	case 50:
		cfg, name, figure = eval.Paper50(seed), "Table 2", "Figure 4"
		if profile == "ci" {
			cfg = eval.CI50(seed)
			name, figure = "Table 2 (CI profile)", "Figure 4 (CI profile)"
		}
	default:
		return cfg, "", "", fmt.Errorf("unknown dataset %d (want 20 or 50)", dataset)
	}
	if profile != "full" && profile != "ci" {
		return cfg, "", "", fmt.Errorf("unknown profile %q (want full or ci)", profile)
	}
	return cfg, name, figure, nil
}

// runAblation evaluates LRF-CSVM variants around the default configuration.
func runAblation(exp *eval.Experiment, which string) error {
	var schemes []core.Scheme
	switch which {
	case "selection":
		for _, strat := range []core.SelectionStrategy{core.SelectLogAssisted, core.SelectMaxMin, core.SelectBoundary, core.SelectRandom} {
			schemes = append(schemes, core.LRFCSVMWithSelection{Params: core.DefaultCSVMParams(), Strategy: strat, RandomSeed: 11})
		}
	case "rho":
		for _, rho := range []float64{0.1, 0.5, 1, 2} {
			p := core.DefaultCSVMParams()
			p.Coupled.Rho = rho
			schemes = append(schemes, namedScheme{core.LRFCSVM{Params: p}, fmt.Sprintf("LRF-CSVM rho=%g", rho)})
		}
	case "delta":
		for _, delta := range []float64{0.25, 0.5, 1, 2, 4} {
			p := core.DefaultCSVMParams()
			p.Coupled.Delta = delta
			schemes = append(schemes, namedScheme{core.LRFCSVM{Params: p}, fmt.Sprintf("LRF-CSVM delta=%g", delta)})
		}
	case "unlabeled":
		for _, nu := range []int{8, 16, 32, 64} {
			p := core.DefaultCSVMParams()
			p.NumUnlabeled = nu
			schemes = append(schemes, namedScheme{core.LRFCSVM{Params: p}, fmt.Sprintf("LRF-CSVM N'=%d", nu)})
		}
	case "logkernel":
		rbf := core.LogRBFKernel(&core.QueryContext{Visual: exp.Visual, LogVectors: exp.LogVectors, Query: 0, Labeled: []core.LabeledExample{{Index: 0, Label: 1}}})
		linearParams := core.DefaultCSVMParams()
		rbfParams := core.DefaultCSVMParams()
		rbfParams.LogKernel = rbf
		schemes = append(schemes,
			namedScheme{core.LRF2SVMs{}, "LRF-2SVMs log=linear"},
			namedScheme{core.LRF2SVMs{Options: core.SVMOptions{LogKernel: rbf}}, "LRF-2SVMs log=rbf"},
			namedScheme{core.LRFCSVM{Params: linearParams}, "LRF-CSVM log=linear"},
			namedScheme{core.LRFCSVM{Params: rbfParams}, "LRF-CSVM log=rbf"},
		)
	default:
		return fmt.Errorf("unknown ablation %q (want selection, rho, delta, unlabeled or logkernel)", which)
	}
	// Always include the two reference schemes for context.
	schemes = append([]core.Scheme{core.RFSVM{}, core.LRF2SVMs{}}, schemes...)
	table, err := exp.Run("Ablation: "+which, schemes)
	if err != nil {
		return err
	}
	fmt.Println(table.Format())
	return nil
}

// namedScheme overrides a scheme's display name so ablation variants are
// distinguishable in the output table.
type namedScheme struct {
	core.Scheme
	name string
}

func (n namedScheme) Name() string { return n.name }
