package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lrfcsvm/internal/feedbacklog"
	"lrfcsvm/internal/linalg"
	"lrfcsvm/internal/metrics"
	"lrfcsvm/internal/retrieval"
	"lrfcsvm/internal/server"
)

// This file is the serving-path load test of lrfbench (-loadtest): a
// closed-loop driver against the in-process cbirserver handler. N simulated
// users each run the full relevance-feedback loop — initial query, start a
// session, judge the page, synchronous refine, commit — with periodic
// ingestion bursts mixed in, exactly the traffic the HTTP API serves in
// production. The driver measures per-endpoint latency percentiles from the
// raw samples (no histogram approximation), counts every status code, pulls
// the shed counters from /api/status, validates the final /metrics scrape,
// writes the machine-readable BENCH_load.json, and exits non-zero when an
// SLO floor is violated so CI catches serving-path regressions.

// SLO floors. These are deliberately generous — they exist to catch
// catastrophic regressions (an accidental O(n^2) in the serving path, a
// lock held across training) on shared CI hosts, not to benchmark the
// machine. Violations fail the run.
const (
	// sloErrorBudget: no request may fail with a status >= 400 other than
	// 429/503 (load shedding is expected behavior under a closed loop
	// saturating the admission limits, and is reported separately).
	sloQueryP99  = 2 * time.Second
	sloRefineP99 = 30 * time.Second
	sloOtherP99  = 2 * time.Second
)

// loadLevel is one concurrency level's results in BENCH_load.json.
type loadLevel struct {
	Users           int                 `json:"users"`
	IterationsPer   int                 `json:"iterations_per_user"`
	DurationSeconds float64             `json:"duration_seconds"`
	Requests        int                 `json:"requests"`
	ThroughputRPS   float64             `json:"throughput_rps"`
	Codes           map[string]int      `json:"codes"`
	Shed            map[string]int64    `json:"shed"`
	Errors          int                 `json:"errors"`
	Endpoints       []loadEndpointStats `json:"endpoints"`
	SLOViolations   []string            `json:"slo_violations"`
}

// loadEndpointStats is one endpoint's latency summary at one level.
type loadEndpointStats struct {
	Endpoint string  `json:"endpoint"`
	Count    int     `json:"count"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// loadReport is the BENCH_load.json document.
type loadReport struct {
	Profile    string      `json:"profile"`
	Images     int         `json:"images"`
	Dim        int         `json:"dim"`
	GoVersion  string      `json:"go_version"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Levels     []loadLevel `json:"levels"`
}

// loadSample is one completed request as the driver saw it.
type loadSample struct {
	endpoint string
	status   int
	dur      time.Duration
}

// loadUserState is one simulated user's per-iteration scratch.
type loadUser struct {
	id      int
	query   int
	samples []loadSample
}

// runLoadTest drives the closed loop at each requested concurrency level
// against a fresh server, writes outPath and returns an error when any
// level violated an SLO floor.
func runLoadTest(profile, usersSpec string, iters int, seed uint64, outPath string) error {
	levels, err := parseUsersSpec(usersSpec)
	if err != nil {
		return err
	}
	if iters <= 0 {
		if profile == "ci" {
			iters = 3
		} else {
			iters = 10
		}
	}
	// Collection scale by profile: big enough that a query scans multiple
	// shards, small enough that the loadtest is about the serving path,
	// not dataset preparation.
	categories, perCategory, dim := 10, 40, 16
	if profile == "ci" {
		categories, perCategory, dim = 5, 20, 8
	}
	visual, labels := loadCollection(categories, perCategory, dim, seed)
	fmt.Printf("loadtest: %d images (dim %d), levels %v, %d iterations/user\n",
		len(visual), dim, levels, iters)

	report := loadReport{
		Profile:    profile,
		Images:     len(visual),
		Dim:        dim,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	var violations int
	for _, users := range levels {
		level, err := runLoadLevel(visual, labels, seed, users, iters)
		if err != nil {
			return err
		}
		violations += len(level.SLOViolations)
		report.Levels = append(report.Levels, level)
		printLoadLevel(level)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if violations > 0 {
		return fmt.Errorf("%d SLO violation(s); see the slo_violations sections of %s", violations, outPath)
	}
	return nil
}

// runLoadLevel builds a fresh engine + server and runs one concurrency
// level to completion.
func runLoadLevel(visual []linalg.Vector, labels []int, seed uint64, users, iters int) (loadLevel, error) {
	log, err := feedbacklog.Simulate(visual, labels, feedbacklog.SimulatorConfig{
		Sessions: 40, ReturnedPerSession: 10, NoiseRate: 0.05, ExplorationFraction: 0.3, Seed: seed,
	})
	if err != nil {
		return loadLevel{}, err
	}
	engine, err := retrieval.NewEngine(visual, log, retrieval.Options{ShardSize: 64})
	if err != nil {
		return loadLevel{}, err
	}
	defer engine.Close()
	// Admission limits are fixed constants, not GOMAXPROCS-derived, so the
	// shed counts in the report compare across machines: 8 users fit the
	// train class (4 slots + 4 queue slots serving staggered arrivals), 32
	// and 128 saturate it — the higher levels measure the load-shedding
	// behavior, not just clean latencies.
	// MaxSessions covers every session a level can create: a user whose
	// refine was shed abandons its session, and an LRU eviction racing a
	// live session would show up as spurious 404s.
	s := server.NewWithConfig(engine, server.Config{
		MaxInflightQuery:  16,
		MaxInflightTrain:  4,
		MaxInflightIngest: 2,
		QueueWait:         2 * time.Second,
		MaxSessions:       users*iters + users,
	})
	defer s.Close()
	handler := s.Handler()

	start := time.Now()
	workers := make([]*loadUser, users)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		workers[u] = &loadUser{id: u, query: u % len(visual)}
		wg.Add(1)
		go func(lu *loadUser) {
			defer wg.Done()
			runLoadUser(lu, handler, visual, labels, iters)
		}(workers[u])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var samples []loadSample
	for _, lu := range workers {
		samples = append(samples, lu.samples...)
	}
	level := summarizeLoadLevel(users, iters, elapsed, samples)

	// The server's own accounting must survive the run: the final /metrics
	// scrape parses as valid exposition and /api/status supplies the shed
	// counters the report records.
	text, err := scrapeLoadMetrics(handler)
	if err != nil {
		return level, err
	}
	if err := metrics.ValidateExposition(text); err != nil {
		return level, fmt.Errorf("loadtest: /metrics exposition invalid after %d-user run: %v", users, err)
	}
	status, err := scrapeLoadStatus(handler)
	if err != nil {
		return level, err
	}
	level.Shed = map[string]int64{
		"query":  status.Admission.Query.Shed,
		"train":  status.Admission.Train.Shed,
		"ingest": status.Admission.Ingest.Shed,
	}
	return level, nil
}

// runLoadUser is one simulated user's closed loop: each iteration runs the
// full feedback cycle; every fourth iteration of every fourth user posts an
// ingestion burst first, so collection growth and epoch bumps happen under
// load like they do in production.
func runLoadUser(lu *loadUser, handler http.Handler, visual []linalg.Vector, labels []int, iters int) {
	dim := len(visual[0])
	for i := 0; i < iters; i++ {
		if lu.id%4 == 0 && i%4 == 3 {
			burst := make([][]float64, 4)
			for b := range burst {
				v := make([]float64, dim)
				src := visual[(lu.id+b)%len(visual)]
				for d := range v {
					v[d] = src[d] + 0.01*float64(b+1)
				}
				burst[b] = v
			}
			lu.do(handler, "images", http.MethodPost, "/api/images", server.AddImagesRequest{Images: burst}, nil)
		}

		var q server.QueryResponse
		if st := lu.do(handler, "query", http.MethodGet,
			fmt.Sprintf("/api/query?image=%d&k=8", lu.query), nil, &q); st != http.StatusOK {
			continue // shed or shutting down: back to the top of the loop
		}
		var sess server.StartSessionResponse
		if st := lu.do(handler, "sessions", http.MethodPost, "/api/sessions",
			server.StartSessionRequest{Query: lu.query}, &sess); st != http.StatusOK {
			continue
		}
		judge := server.JudgeRequest{SessionID: sess.SessionID}
		for _, r := range q.Results {
			judge.Judgments = append(judge.Judgments, struct {
				Image    int  `json:"image"`
				Relevant bool `json:"relevant"`
			}{Image: r.Image, Relevant: r.Image < len(labels) && labels[r.Image] == labels[lu.query]})
		}
		if st := lu.do(handler, "judge", http.MethodPost, "/api/sessions/judge", judge, nil); st != http.StatusOK {
			continue
		}
		if st := lu.do(handler, "refine", http.MethodPost, "/api/sessions/refine",
			server.RefineRequest{SessionID: sess.SessionID, Scheme: "lrf-csvm", K: 8}, nil); st != http.StatusOK {
			continue
		}
		lu.do(handler, "commit", http.MethodPost, "/api/sessions/commit",
			server.CommitRequest{SessionID: sess.SessionID}, nil)
	}
}

// do issues one in-process request, records the sample and decodes the
// response into out when the request succeeded.
func (lu *loadUser) do(handler http.Handler, endpoint, method, target string, body, out interface{}) int {
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			panic(err) // driver bug, not a measurement
		}
		reader = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, target, reader)
	rr := httptest.NewRecorder()
	start := time.Now()
	handler.ServeHTTP(rr, req)
	lu.samples = append(lu.samples, loadSample{endpoint: endpoint, status: rr.Code, dur: time.Since(start)})
	if rr.Code == http.StatusOK && out != nil {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			panic(err)
		}
	}
	return rr.Code
}

// summarizeLoadLevel turns the raw samples into the level's report section:
// exact percentiles per endpoint, status-code counts, the error tally and
// the SLO verdicts.
func summarizeLoadLevel(users, iters int, elapsed time.Duration, samples []loadSample) loadLevel {
	level := loadLevel{
		Users:           users,
		IterationsPer:   iters,
		DurationSeconds: elapsed.Seconds(),
		Requests:        len(samples),
		Codes:           map[string]int{},
	}
	if elapsed > 0 {
		level.ThroughputRPS = float64(len(samples)) / elapsed.Seconds()
	}
	byEndpoint := map[string][]float64{}
	for _, s := range samples {
		level.Codes[strconv.Itoa(s.status)]++
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.dur.Seconds()*1000)
		if s.status >= 400 && s.status != http.StatusServiceUnavailable && s.status != http.StatusTooManyRequests {
			level.Errors++
		}
	}
	if level.Errors > 0 {
		level.SLOViolations = append(level.SLOViolations,
			fmt.Sprintf("%d request(s) failed with a non-shedding error status", level.Errors))
	}
	endpoints := make([]string, 0, len(byEndpoint))
	for ep := range byEndpoint {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		ms := byEndpoint[ep]
		sort.Float64s(ms)
		stats := loadEndpointStats{
			Endpoint: ep,
			Count:    len(ms),
			P50Ms:    exactPercentile(ms, 0.50),
			P90Ms:    exactPercentile(ms, 0.90),
			P99Ms:    exactPercentile(ms, 0.99),
			MaxMs:    ms[len(ms)-1],
		}
		level.Endpoints = append(level.Endpoints, stats)
		floor := sloOtherP99
		switch ep {
		case "query":
			floor = sloQueryP99
		case "refine":
			floor = sloRefineP99
		}
		if stats.P99Ms > floor.Seconds()*1000 {
			level.SLOViolations = append(level.SLOViolations,
				fmt.Sprintf("%s p99 %.1fms exceeds the %v floor", ep, stats.P99Ms, floor))
		}
	}
	return level
}

// exactPercentile reads the q-th percentile from sorted samples (nearest
// rank, the convention exact driver-side percentiles usually use).
func exactPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func scrapeLoadMetrics(handler http.Handler) (string, error) {
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		return "", fmt.Errorf("loadtest: GET /metrics: status %d", rr.Code)
	}
	return rr.Body.String(), nil
}

func scrapeLoadStatus(handler http.Handler) (server.StatusResponse, error) {
	var status server.StatusResponse
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/api/status", nil))
	if rr.Code != http.StatusOK {
		return status, fmt.Errorf("loadtest: GET /api/status: status %d", rr.Code)
	}
	err := json.Unmarshal(rr.Body.Bytes(), &status)
	return status, err
}

func printLoadLevel(level loadLevel) {
	fmt.Printf("\n%d users x %d iterations: %d requests in %.2fs (%.1f req/s), shed q/t/i %d/%d/%d\n",
		level.Users, level.IterationsPer, level.Requests, level.DurationSeconds, level.ThroughputRPS,
		level.Shed["query"], level.Shed["train"], level.Shed["ingest"])
	fmt.Printf("  %-10s %8s %10s %10s %10s %10s\n", "endpoint", "count", "p50", "p90", "p99", "max")
	for _, ep := range level.Endpoints {
		fmt.Printf("  %-10s %8d %9.2fms %9.2fms %9.2fms %9.2fms\n",
			ep.Endpoint, ep.Count, ep.P50Ms, ep.P90Ms, ep.P99Ms, ep.MaxMs)
	}
	for _, v := range level.SLOViolations {
		fmt.Printf("  SLO VIOLATION: %s\n", v)
	}
}

// parseUsersSpec parses the -loadusers flag ("8,32,128").
func parseUsersSpec(spec string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -loadusers level %q (want a positive integer)", part)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("-loadusers %q names no levels", spec)
	}
	return levels, nil
}

// loadCollection builds the clustered synthetic collection the loadtest
// serves: categories x perCategory Gaussian clusters in dim dimensions,
// deterministic for a fixed seed.
func loadCollection(categories, perCategory, dim int, seed uint64) ([]linalg.Vector, []int) {
	rng := linalg.NewRNG(seed)
	var visual []linalg.Vector
	var labels []int
	for c := 0; c < categories; c++ {
		center := make(linalg.Vector, dim)
		for d := range center {
			center[d] = rng.Normal(0, 4)
		}
		for i := 0; i < perCategory; i++ {
			v := make(linalg.Vector, dim)
			for d := range v {
				v[d] = center[d] + rng.Normal(0, 0.8)
			}
			visual = append(visual, v)
			labels = append(labels, c)
		}
	}
	return visual, labels
}
