// Command datasetgen renders the synthetic COREL-like datasets to disk as
// PPM images plus a manifest (image index, category index, category name,
// appearance variant). It substitutes the proprietary COREL Photo CDs used
// by the paper (see DESIGN.md §4) and exists mainly so the generated imagery
// can be inspected — the benchmarks render images in memory.
//
// Example:
//
//	datasetgen -categories 20 -per-category 10 -out ./corel20-preview
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lrfcsvm/internal/dataset"
	"lrfcsvm/internal/imaging"
)

func main() {
	var (
		categories = flag.Int("categories", 20, "number of categories (max 50)")
		perCat     = flag.Int("per-category", 100, "images per category")
		size       = flag.Int("size", 64, "image width and height in pixels")
		seed       = flag.Uint64("seed", 42, "generation seed")
		noise      = flag.Float64("extra-noise", 15, "extra pixel noise (0..255 scale)")
		out        = flag.String("out", "dataset-out", "output directory")
	)
	flag.Parse()

	spec := dataset.Spec{
		Categories:        *categories,
		ImagesPerCategory: *perCat,
		Width:             *size,
		Height:            *size,
		Seed:              *seed,
		ExtraNoise:        *noise,
	}
	gen, err := dataset.NewGenerator(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
	manifest, err := os.Create(filepath.Join(*out, "manifest.csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "index,category,category_name,variant,file")

	for i := 0; i < gen.NumImages(); i++ {
		item := gen.Item(i)
		name := fmt.Sprintf("%s_%04d.ppm", item.CategoryName, i)
		if err := imaging.SavePPM(filepath.Join(*out, name), gen.Render(i)); err != nil {
			fmt.Fprintln(os.Stderr, "datasetgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(manifest, "%d,%d,%s,%d,%s\n", i, item.Category, item.CategoryName, gen.Variant(i), name)
	}
	if err := manifest.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d images across %d categories to %s\n", gen.NumImages(), gen.NumCategories(), *out)
}
