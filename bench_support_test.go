package lrfcsvm

import (
	"testing"

	"lrfcsvm/internal/dataset"
	"lrfcsvm/internal/eval"
	"lrfcsvm/internal/features"
)

// ci returns the named CI experiment profile.
func ci(name string) eval.Config {
	if name == "CI50" {
		return eval.CI50(1)
	}
	return eval.CI20(1)
}

// benchmarkFeatureExtraction is split into its own file to keep the
// benchmark table in bench_test.go focused on the paper's experiments.
func benchmarkFeatureExtraction(b *testing.B) {
	gen, err := dataset.NewGenerator(dataset.Spec{Categories: 1, ImagesPerCategory: 1, Width: 64, Height: 64, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	img := gen.Render(0)
	var extractor features.Extractor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := extractor.Extract(img); len(d) != features.Dim {
			b.Fatalf("unexpected descriptor length %d", len(d))
		}
	}
}

// TestBenchmarkProfilesAreValid guards the CI benchmark profiles against
// accidental misconfiguration: they must validate and stay small enough to
// keep `go test -bench=.` tractable.
func TestBenchmarkProfilesAreValid(t *testing.T) {
	for _, cfg := range []struct {
		name       string
		categories int
	}{{"CI20", 8}, {"CI50", 12}} {
		t.Run(cfg.name, func(t *testing.T) {
			c := ci(cfg.name)
			if err := c.Dataset.Validate(); err != nil {
				t.Fatal(err)
			}
			if c.Dataset.Categories != cfg.categories {
				t.Errorf("categories = %d, want %d", c.Dataset.Categories, cfg.categories)
			}
			if c.Dataset.Categories*c.Dataset.ImagesPerCategory > 1000 {
				t.Error("CI profile too large for the benchmark harness")
			}
			if err := c.Log.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
